(** The fleet front end: one process speaking the existing wire
    protocol to clients, fanning digest-keyed work out over a
    consistent-hash ring of shard daemon processes.

    Clients connect exactly as they would to a single daemon — same
    framing, same verbs, byte-identical [Plan] outcomes.  Behind the
    socket, every [submit]'s content digest ({!Protocol.digest}) maps
    onto the ring ({!Ring}): the same spec always lands on the same
    shard process, so each shard's in-memory plan cache stays hot for
    its slice of the keyspace and the fleet-wide hit rate matches a
    single process's.

    The forwarding path moves raw frame bytes: a client's request frame
    goes to its shard verbatim, and the shard's reply frame comes back
    verbatim — the router parses requests (small; it needs the verb and
    the digest preimage) but never reply payloads, so byte-identity is
    structural and a ~20 KB plan outcome costs two copies per hop, not
    a JSON round-trip.

    Per shard the router keeps one persistent pipelined connection —
    opened with a {!Protocol.Hello} handshake that rejects wire-rev
    mismatches up front — with a write-side FIFO of waiter promises
    and a dedicated reader thread that fulfils them in frame order (the
    daemon answers a connection's frames strictly in sequence, so no
    request ids are needed on the wire).  A shard death fails its
    queued waiters, drops the shard from the ring, and re-forwards the
    affected requests to the next live shard with bounded retries;
    planning is deterministic and idempotent, so a kill mid-campaign
    costs replans, never wrong or lost answers.  A reconnector thread
    probes down shards and re-rings them in when they return.

    [stats] and [metrics] answer for the whole fleet: per-shard
    snapshots are scraped over the same connections and merged —
    field-wise sums for the JSON tallies, {!Pdw_obs.Expo.merge} (exact
    bucket-wise histogram summation) for the Prometheus families — with
    the router's own routing counters and forward-latency histogram
    alongside per-process breakdowns. *)

(** The consistent-hash ring, exposed as a pure value for tests: each
    node contributes [vnodes] points (MD5-derived) on a 63-bit circle;
    a key belongs to the first point clockwise from its own hash.
    Removing a node moves only the keys that mapped to it. *)
module Ring : sig
  type t

  (** [create ~nodes ~vnodes] builds the ring ([vnodes] floored at 1).
      Deterministic: same nodes and vnodes, same ring. *)
  val create : nodes:string list -> vnodes:int -> t

  (** [lookup t key] is the owning node, [None] on an empty ring. *)
  val lookup : t -> string -> string option

  (** Total points ([nodes × vnodes]). *)
  val size : t -> int

  (** The 63-bit point hash (exposed for tests). *)
  val hash_point : string -> int
end

type config = {
  socket_path : string;  (** the front-end listening socket *)
  shard_sockets : string list;  (** one daemon socket per shard process *)
  vnodes : int;  (** ring points per shard (default 64) *)
  max_retries : int;
      (** re-forwards after a shard dies mid-request (default 3) *)
  reconnect_ms : int;  (** down-shard probe period (default 500) *)
}

val default_config :
  socket_path:string -> shard_sockets:string list -> config

type t

(** [start config] connects to the shards (failures leave a shard
    [down]; the reconnector keeps probing), binds the front-end socket
    and returns immediately.
    @raise Invalid_argument on an empty shard list.
    @raise Unix.Unix_error when the socket cannot be bound. *)
val start : config -> t

val config : t -> config

(** Shards currently connected. *)
val live_count : t -> int

(** The fleet [stats] payload: router identity and routing counters
    under ["fleet"], summed shard ["requests"]/["cache"] tallies,
    forward-latency percentiles, and a ["procs"] array with each shard
    process's own stats snapshot (or its down reason). *)
val stats_json : t -> Pdw_obs.Json.t

(** The fleet scrape surface: router families ([pdw_router_*],
    [pdw_fleet_*]), per-process breakdowns ([pdw_proc_*{proc=…}]), and
    every shard family merged by summation — minus the per-shard
    uptimes, which do not add. *)
val metrics_text : t -> string

(** Initiate shutdown and wait: close the front end and the backend
    connections.  Does not stop the shard daemons — send [shutdown]
    through the router (it broadcasts to the fleet first) or use
    [pdw fleet stop] for that.  Idempotent. *)
val stop : t -> unit

(** Block until the router has stopped. *)
val wait : t -> unit
