module Counters = Pdw_obs.Counters

let c_hits = Counters.counter "service.cache.hits"
let c_misses = Counters.counter "service.cache.misses"
let c_evictions = Counters.counter "service.cache.evictions"

(* Doubly-linked LRU list threaded through a hash table.  [head] is the
   most recently used entry, [tail] the eviction candidate.  One such
   structure per shard; a digest maps to exactly one shard, so every
   operation takes exactly one short per-shard lock and concurrent
   traffic on distinct shards never contends. *)
type node = {
  key : string;
  mutable value : string;
  mutable prev : node option;  (* towards head *)
  mutable next : node option;  (* towards tail *)
}

type shard = {
  shard_capacity : int;
  table : (string, node) Hashtbl.t;
  mutable head : node option;
  mutable tail : node option;
  mutable hits : int;
  mutable misses : int;
  mutable evictions : int;
  lock : Mutex.t;
}

type t = { shards : shard array }

let create ~capacity ?(shards = 1) () =
  let capacity = max 1 capacity in
  let shards = max 1 (min shards capacity) in
  (* Round the per-shard budget up: the cache may hold slightly more
     than [capacity] in total, never less per shard than its fair
     share — an LRU that silently shrank per shard would evict hot
     entries a single-shard cache of the same capacity would keep. *)
  let shard_capacity = (capacity + shards - 1) / shards in
  {
    shards =
      Array.init shards (fun _ ->
          {
            shard_capacity;
            table = Hashtbl.create (2 * shard_capacity);
            head = None;
            tail = None;
            hits = 0;
            misses = 0;
            evictions = 0;
            lock = Mutex.create ();
          });
  }

let shard_count t = Array.length t.shards

let shard_of t key = t.shards.(Hashtbl.hash key mod Array.length t.shards)

let unlink s n =
  (match n.prev with Some p -> p.next <- n.next | None -> s.head <- n.next);
  (match n.next with Some x -> x.prev <- n.prev | None -> s.tail <- n.prev);
  n.prev <- None;
  n.next <- None

let push_front s n =
  n.next <- s.head;
  n.prev <- None;
  (match s.head with Some h -> h.prev <- Some n | None -> s.tail <- Some n);
  s.head <- Some n

let locked s f =
  Mutex.lock s.lock;
  Fun.protect f ~finally:(fun () -> Mutex.unlock s.lock)

let find t key =
  let s = shard_of t key in
  locked s @@ fun () ->
  match Hashtbl.find_opt s.table key with
  | Some n ->
    s.hits <- s.hits + 1;
    Counters.incr c_hits;
    unlink s n;
    push_front s n;
    Some n.value
  | None ->
    s.misses <- s.misses + 1;
    Counters.incr c_misses;
    None

let add t key value =
  let s = shard_of t key in
  locked s @@ fun () ->
  match Hashtbl.find_opt s.table key with
  | Some n ->
    n.value <- value;
    unlink s n;
    push_front s n
  | None ->
    if Hashtbl.length s.table >= s.shard_capacity then begin
      match s.tail with
      | Some lru ->
        unlink s lru;
        Hashtbl.remove s.table lru.key;
        s.evictions <- s.evictions + 1;
        Counters.incr c_evictions
      | None -> ()
    end;
    let n = { key; value; prev = None; next = None } in
    Hashtbl.replace s.table key n;
    push_front s n

type stats = {
  hits : int;
  misses : int;
  evictions : int;
  length : int;
  capacity : int;
}

let shard_stats t =
  Array.map
    (fun s ->
      locked s @@ fun () ->
      {
        hits = s.hits;
        misses = s.misses;
        evictions = s.evictions;
        length = Hashtbl.length s.table;
        capacity = s.shard_capacity;
      })
    t.shards

(* Aggregated over shards.  Each shard is snapshotted under its own
   lock; the sum is exactly the sum of those snapshots (what the stats
   endpoint's consistency check relies on), not a global freeze. *)
let stats t =
  Array.fold_left
    (fun acc s ->
      {
        hits = acc.hits + s.hits;
        misses = acc.misses + s.misses;
        evictions = acc.evictions + s.evictions;
        length = acc.length + s.length;
        capacity = acc.capacity + s.capacity;
      })
    { hits = 0; misses = 0; evictions = 0; length = 0; capacity = 0 }
    (shard_stats t)

let hit_rate s =
  let total = s.hits + s.misses in
  if total = 0 then 0.0 else float_of_int s.hits /. float_of_int total
