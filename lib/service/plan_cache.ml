module Counters = Pdw_obs.Counters

let c_hits = Counters.counter "service.cache.hits"
let c_misses = Counters.counter "service.cache.misses"
let c_evictions = Counters.counter "service.cache.evictions"
let c_promotions = Counters.counter "service.cache.promotions"
let c_demotions = Counters.counter "service.cache.demotions"

(* Doubly-linked LRU list threaded through a hash table.  [head] is the
   most recently used entry, [tail] the eviction candidate.  One such
   structure per shard; a digest maps to exactly one shard, so every
   operation takes exactly one short per-shard lock and concurrent
   traffic on distinct shards never contends. *)
type node = {
  key : string;
  mutable value : string;
  mutable prev : node option;  (* towards head *)
  mutable next : node option;  (* towards tail *)
}

type shard = {
  shard_capacity : int;
  table : (string, node) Hashtbl.t;
  mutable head : node option;
  mutable tail : node option;
  mutable hits : int;
  mutable misses : int;
  mutable evictions : int;
  mutable promotions : int;
  mutable demotions : int;
  lock : Mutex.t;
}

type t = { shards : shard array; store : Plan_store.t option }

let create ~capacity ?(shards = 1) ?store () =
  let capacity = max 1 capacity in
  let shards = max 1 (min shards capacity) in
  (* Round the per-shard budget up: the cache may hold slightly more
     than [capacity] in total, never less per shard than its fair
     share — an LRU that silently shrank per shard would evict hot
     entries a single-shard cache of the same capacity would keep. *)
  let shard_capacity = (capacity + shards - 1) / shards in
  {
    store;
    shards =
      Array.init shards (fun _ ->
          {
            shard_capacity;
            table = Hashtbl.create (2 * shard_capacity);
            head = None;
            tail = None;
            hits = 0;
            misses = 0;
            evictions = 0;
            promotions = 0;
            demotions = 0;
            lock = Mutex.create ();
          });
  }

let store t = t.store

let shard_count t = Array.length t.shards

let shard_of t key = t.shards.(Hashtbl.hash key mod Array.length t.shards)

let unlink s n =
  (match n.prev with Some p -> p.next <- n.next | None -> s.head <- n.next);
  (match n.next with Some x -> x.prev <- n.prev | None -> s.tail <- n.prev);
  n.prev <- None;
  n.next <- None

let push_front s n =
  n.next <- s.head;
  n.prev <- None;
  (match s.head with Some h -> h.prev <- Some n | None -> s.tail <- Some n);
  s.head <- Some n

let locked s f =
  Mutex.lock s.lock;
  Fun.protect f ~finally:(fun () -> Mutex.unlock s.lock)

(* Insert or refresh under the shard lock, evicting the shard's LRU
   entry at capacity.  Shared by [add] and the store-promotion path. *)
let insert_locked s key value =
  match Hashtbl.find_opt s.table key with
  | Some n ->
    n.value <- value;
    unlink s n;
    push_front s n
  | None ->
    if Hashtbl.length s.table >= s.shard_capacity then begin
      match s.tail with
      | Some lru ->
        unlink s lru;
        Hashtbl.remove s.table lru.key;
        s.evictions <- s.evictions + 1;
        Counters.incr c_evictions
      | None -> ()
    end;
    let n = { key; value; prev = None; next = None } in
    Hashtbl.replace s.table key n;
    push_front s n

type tier = Memory | Store

(* Memory first, then the persistent store.  A store hit is *promoted*
   into the memory tier (and counted as such) so the next lookup is a
   memory hit; the disk read happens outside the shard lock — a slow
   store never blocks the shard's memory traffic.  Memory-tier eviction
   never deletes from the store: the store is the bigger, slower
   tier. *)
let find_tier t key =
  let s = shard_of t key in
  let memory =
    locked s @@ fun () ->
    match Hashtbl.find_opt s.table key with
    | Some n ->
      s.hits <- s.hits + 1;
      Counters.incr c_hits;
      unlink s n;
      push_front s n;
      Some n.value
    | None ->
      s.misses <- s.misses + 1;
      Counters.incr c_misses;
      None
  in
  match memory with
  | Some v -> Some (v, Memory)
  | None -> (
    match Option.bind t.store (fun st -> Plan_store.find st key) with
    | None -> None
    | Some v ->
      locked s (fun () ->
          s.promotions <- s.promotions + 1;
          Counters.incr c_promotions;
          insert_locked s key v);
      Some (v, Store))

let find t key = Option.map fst (find_tier t key)

(* Write-through: every fresh plan lands in both tiers, so a restarted
   (or newly joined) process finds it on disk.  The store write happens
   outside the shard lock for the same reason the store read does. *)
let add t key value =
  let s = shard_of t key in
  locked s (fun () -> insert_locked s key value);
  match t.store with
  | None -> ()
  | Some st ->
    Plan_store.add st key value;
    locked s (fun () ->
        s.demotions <- s.demotions + 1;
        Counters.incr c_demotions)

type stats = {
  hits : int;
  misses : int;
  evictions : int;
  promotions : int;
  demotions : int;
  length : int;
  capacity : int;
}

let shard_stats t =
  Array.map
    (fun s ->
      locked s @@ fun () ->
      {
        hits = s.hits;
        misses = s.misses;
        evictions = s.evictions;
        promotions = s.promotions;
        demotions = s.demotions;
        length = Hashtbl.length s.table;
        capacity = s.shard_capacity;
      })
    t.shards

(* Aggregated over shards.  Each shard is snapshotted under its own
   lock; the sum is exactly the sum of those snapshots (what the stats
   endpoint's consistency check relies on), not a global freeze. *)
let stats t =
  Array.fold_left
    (fun acc s ->
      {
        hits = acc.hits + s.hits;
        misses = acc.misses + s.misses;
        evictions = acc.evictions + s.evictions;
        promotions = acc.promotions + s.promotions;
        demotions = acc.demotions + s.demotions;
        length = acc.length + s.length;
        capacity = acc.capacity + s.capacity;
      })
    {
      hits = 0;
      misses = 0;
      evictions = 0;
      promotions = 0;
      demotions = 0;
      length = 0;
      capacity = 0;
    }
    (shard_stats t)

let store_stats t = Option.map Plan_store.stats t.store

let hit_rate s =
  let total = s.hits + s.misses in
  if total = 0 then 0.0 else float_of_int s.hits /. float_of_int total
