module Counters = Pdw_obs.Counters

let c_hits = Counters.counter "service.cache.hits"
let c_misses = Counters.counter "service.cache.misses"
let c_evictions = Counters.counter "service.cache.evictions"

(* Doubly-linked LRU list threaded through a hash table.  [head] is the
   most recently used entry, [tail] the eviction candidate. *)
type node = {
  key : string;
  mutable value : string;
  mutable prev : node option;  (* towards head *)
  mutable next : node option;  (* towards tail *)
}

type t = {
  capacity : int;
  table : (string, node) Hashtbl.t;
  mutable head : node option;
  mutable tail : node option;
  mutable hits : int;
  mutable misses : int;
  mutable evictions : int;
  lock : Mutex.t;
}

let create ~capacity () =
  let capacity = max 1 capacity in
  {
    capacity;
    table = Hashtbl.create (2 * capacity);
    head = None;
    tail = None;
    hits = 0;
    misses = 0;
    evictions = 0;
    lock = Mutex.create ();
  }

let unlink t n =
  (match n.prev with Some p -> p.next <- n.next | None -> t.head <- n.next);
  (match n.next with Some s -> s.prev <- n.prev | None -> t.tail <- n.prev);
  n.prev <- None;
  n.next <- None

let push_front t n =
  n.next <- t.head;
  n.prev <- None;
  (match t.head with Some h -> h.prev <- Some n | None -> t.tail <- Some n);
  t.head <- Some n

let locked t f =
  Mutex.lock t.lock;
  Fun.protect f ~finally:(fun () -> Mutex.unlock t.lock)

let find t key =
  locked t @@ fun () ->
  match Hashtbl.find_opt t.table key with
  | Some n ->
    t.hits <- t.hits + 1;
    Counters.incr c_hits;
    unlink t n;
    push_front t n;
    Some n.value
  | None ->
    t.misses <- t.misses + 1;
    Counters.incr c_misses;
    None

let add t key value =
  locked t @@ fun () ->
  match Hashtbl.find_opt t.table key with
  | Some n ->
    n.value <- value;
    unlink t n;
    push_front t n
  | None ->
    if Hashtbl.length t.table >= t.capacity then begin
      match t.tail with
      | Some lru ->
        unlink t lru;
        Hashtbl.remove t.table lru.key;
        t.evictions <- t.evictions + 1;
        Counters.incr c_evictions
      | None -> ()
    end;
    let n = { key; value; prev = None; next = None } in
    Hashtbl.replace t.table key n;
    push_front t n

type stats = {
  hits : int;
  misses : int;
  evictions : int;
  length : int;
  capacity : int;
}

let stats t =
  locked t @@ fun () ->
  {
    hits = t.hits;
    misses = t.misses;
    evictions = t.evictions;
    length = Hashtbl.length t.table;
    capacity = t.capacity;
  }

let hit_rate s =
  let total = s.hits + s.misses in
  if total = 0 then 0.0 else float_of_int s.hits /. float_of_int total
