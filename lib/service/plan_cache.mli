(** Content-addressed plan cache: digest of the canonicalized
    (layout+assay, method, config) request → the full outcome JSON a
    one-shot run would print.

    Bounded LRU: [add] beyond capacity evicts the least-recently-used
    entry; [find] promotes.  Thread-safe (one mutex — operations are
    O(1) pointer surgery, so the lock is never held long).  Hit, miss
    and eviction counts feed both the module's own [stats] record and
    the [Pdw_obs.Counters] table ([service.cache.*]). *)

type t

(** [create ~capacity ()] — [capacity] is clamped to at least 1. *)
val create : capacity:int -> unit -> t

(** [find t digest] is the cached outcome, promoting the entry to
    most-recently-used.  Counts a hit or a miss. *)
val find : t -> string -> string option

(** [add t digest outcome] inserts or refreshes, evicting the LRU entry
    when over capacity. *)
val add : t -> string -> string -> unit

type stats = {
  hits : int;
  misses : int;
  evictions : int;
  length : int;
  capacity : int;
}

val stats : t -> stats

(** [hit_rate s] is hits / (hits + misses), or 0 before any lookup. *)
val hit_rate : stats -> float
