(** Content-addressed plan cache: digest of the canonicalized
    (layout+assay, method, config) request → the full outcome JSON a
    one-shot run would print.

    Sharded bounded LRU: a digest hashes to one of [shards] independent
    LRU structures, each with its own lock, recency list and counters —
    concurrent traffic on distinct shards never contends, and every
    operation takes exactly one short per-shard lock.  [add] beyond a
    shard's capacity evicts that shard's least-recently-used entry;
    [find] promotes.  Hit, miss and eviction counts feed both the
    module's own [stats] record and the [Pdw_obs.Counters] table
    ([service.cache.*]). *)

type t

(** [create ~capacity ?shards ?store ()] — [capacity] is clamped to at
    least 1, [shards] (default 1) to [1..capacity].  Each shard holds
    up to [ceil (capacity / shards)] entries, so the total never rounds
    below [capacity].  With [store], the in-memory LRU becomes the
    first tier over a persistent {!Plan_store}: misses fall through to
    disk (a hit there is {e promoted} into memory), and every [add]
    writes through (a {e demotion} in tiering parlance — the plan now
    also lives in the bigger, slower tier and survives restarts). *)
val create : capacity:int -> ?shards:int -> ?store:Plan_store.t -> unit -> t

val shard_count : t -> int

(** The persistent tier, when configured. *)
val store : t -> Plan_store.t option

(** Which tier answered a [find]. *)
type tier = Memory | Store

(** [find_tier t digest] is the cached outcome and the tier that held
    it.  A [Memory] hit promotes within its shard's LRU; a [Store] hit
    additionally promotes the plan into the memory tier.  Counts a
    memory hit, or a memory miss followed by the store's own
    hit/miss. *)
val find_tier : t -> string -> (string * tier) option

(** [find t digest] is [find_tier] without the tier. *)
val find : t -> string -> string option

(** [add t digest outcome] inserts or refreshes, evicting the owning
    shard's LRU entry when that shard is at capacity; with a store
    configured the plan is also persisted (write-through). *)
val add : t -> string -> string -> unit

type stats = {
  hits : int;  (** memory-tier hits *)
  misses : int;  (** memory-tier misses (a store hit still counts one) *)
  evictions : int;
  promotions : int;  (** store hits copied up into the memory tier *)
  demotions : int;  (** write-throughs persisted to the store tier *)
  length : int;
  capacity : int;
}

(** Aggregate over all shards.  Each shard is snapshotted under its own
    lock; the totals are exactly the field-wise sums of {!shard_stats}
    taken at the same moment. *)
val stats : t -> stats

(** One snapshot per shard, index-aligned with the internal shard
    array. *)
val shard_stats : t -> stats array

(** [hit_rate s] is hits / (hits + misses), or 0 before any lookup. *)
val hit_rate : stats -> float

(** The persistent tier's own counters, when configured. *)
val store_stats : t -> Plan_store.stats option
