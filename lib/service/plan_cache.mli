(** Content-addressed plan cache: digest of the canonicalized
    (layout+assay, method, config) request → the full outcome JSON a
    one-shot run would print.

    Sharded bounded LRU: a digest hashes to one of [shards] independent
    LRU structures, each with its own lock, recency list and counters —
    concurrent traffic on distinct shards never contends, and every
    operation takes exactly one short per-shard lock.  [add] beyond a
    shard's capacity evicts that shard's least-recently-used entry;
    [find] promotes.  Hit, miss and eviction counts feed both the
    module's own [stats] record and the [Pdw_obs.Counters] table
    ([service.cache.*]). *)

type t

(** [create ~capacity ?shards ()] — [capacity] is clamped to at least
    1, [shards] (default 1) to [1..capacity].  Each shard holds up to
    [ceil (capacity / shards)] entries, so the total never rounds below
    [capacity]. *)
val create : capacity:int -> ?shards:int -> unit -> t

val shard_count : t -> int

(** [find t digest] is the cached outcome, promoting the entry to
    most-recently-used within its shard.  Counts a hit or a miss. *)
val find : t -> string -> string option

(** [add t digest outcome] inserts or refreshes, evicting the owning
    shard's LRU entry when that shard is at capacity. *)
val add : t -> string -> string -> unit

type stats = {
  hits : int;
  misses : int;
  evictions : int;
  length : int;
  capacity : int;
}

(** Aggregate over all shards.  Each shard is snapshotted under its own
    lock; the totals are exactly the field-wise sums of {!shard_stats}
    taken at the same moment. *)
val stats : t -> stats

(** One snapshot per shard, index-aligned with the internal shard
    array. *)
val shard_stats : t -> stats array

(** [hit_rate s] is hits / (hits + misses), or 0 before any lookup. *)
val hit_rate : stats -> float
