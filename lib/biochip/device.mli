(** On-chip devices: the functional units biochemical operations bind to.
    A device occupies one or more grid cells; fluids flow *through* device
    cells, so devices are routable and can themselves be contaminated. *)

type kind = Mixer | Heater | Detector | Filter | Storage

type t = { id : int; kind : kind; name : string }

val make : id:int -> kind:kind -> name:string -> t

val kind_equal : kind -> kind -> bool
val equal : t -> t -> bool

val kind_to_string : kind -> string
val pp_kind : Format.formatter -> kind -> unit
val pp : Format.formatter -> t -> unit

(** One-letter map glyph used by [Layout.render]. *)
val glyph : kind -> char
