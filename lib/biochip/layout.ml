module Coord = Pdw_geometry.Coord
module Grid = Pdw_geometry.Grid

type cell = Blocked | Channel | Device_cell of int | Port_cell of int

(* Packed routing view of the grid, precomputed once per layout so the
   router's hot path never allocates neighbour lists or re-matches cell
   constructors.  Cells are keyed by their row-major [Grid.index];
   [nbr] holds four slots per cell in [Direction.all] order
   (north, south, west, east), [-1] where the neighbour is out of
   bounds — the same enumeration order as [Grid.neighbours], which the
   search kernel's path-identity guarantee relies on. *)
module Routing = struct
  type t = {
    width : int;
    height : int;
    ncells : int;
    routable : Bytes.t;  (* '\001' where a fluid may occupy the cell *)
    through : Bytes.t;  (* '\001' where fluid may also pass through *)
    nbr : int array;  (* 4 slots per cell, -1 padded *)
  }
end

type t = {
  grid : cell Grid.t;
  devices : Device.t array;
  ports : Port.t array;
  device_cells : Coord.t list array; (* indexed by device id *)
  routing : Routing.t;
  (* Lazily-built true shortest-distance field of each port over
     routable cells ([max_int] = unreachable); see [port_distances]. *)
  port_dist : int array option array;
  port_dist_lock : Mutex.t;
}

let fail fmt = Printf.ksprintf invalid_arg fmt

let build_routing grid =
  let width = Grid.width grid and height = Grid.height grid in
  let ncells = width * height in
  let routable = Bytes.make ncells '\000' in
  let through = Bytes.make ncells '\000' in
  Grid.iter grid (fun c v ->
      let i = Grid.index grid c in
      match v with
      | Blocked -> ()
      | Channel | Device_cell _ ->
        Bytes.set routable i '\001';
        Bytes.set through i '\001'
      | Port_cell _ -> Bytes.set routable i '\001');
  let nbr = Array.make (4 * ncells) (-1) in
  for y = 0 to height - 1 do
    for x = 0 to width - 1 do
      let i = (y * width) + x in
      (* Direction.all order: north, south, west, east. *)
      if y > 0 then nbr.((4 * i) + 0) <- i - width;
      if y < height - 1 then nbr.((4 * i) + 1) <- i + width;
      if x > 0 then nbr.((4 * i) + 2) <- i - 1;
      if x < width - 1 then nbr.((4 * i) + 3) <- i + 1
    done
  done;
  { Routing.width; height; ncells; routable; through; nbr }

let make ~grid ~devices ~ports =
  let devices = Array.of_list devices in
  let ports = Array.of_list ports in
  Array.iteri
    (fun i (d : Device.t) ->
      if d.id <> i then fail "Layout: device ids must be dense, got %d at %d" d.id i)
    devices;
  Array.iteri
    (fun i (p : Port.t) ->
      if p.id <> i then fail "Layout: port ids must be dense, got %d at %d" p.id i)
    ports;
  let device_cells = Array.make (Array.length devices) [] in
  let port_seen = Array.make (Array.length ports) false in
  Grid.iter grid (fun c v ->
      match v with
      | Blocked | Channel -> ()
      | Device_cell id ->
        if id < 0 || id >= Array.length devices then
          fail "Layout: cell %s references unknown device %d"
            (Coord.to_string c) id;
        device_cells.(id) <- c :: device_cells.(id)
      | Port_cell id ->
        if id < 0 || id >= Array.length ports then
          fail "Layout: cell %s references unknown port %d"
            (Coord.to_string c) id;
        if port_seen.(id) then
          fail "Layout: port %d occupies several cells" id;
        if not (Coord.equal ports.(id).position c) then
          fail "Layout: port %d placed at %s but declared at %s" id
            (Coord.to_string c)
            (Coord.to_string ports.(id).position);
        port_seen.(id) <- true);
  Array.iteri
    (fun id seen ->
      if not seen then fail "Layout: port %d has no cell" id)
    port_seen;
  Array.iteri
    (fun id cells ->
      if cells = [] then fail "Layout: device %d has no cell" id;
      device_cells.(id) <- List.sort Coord.compare cells)
    device_cells;
  let routable_cell c =
    match Grid.get grid c with
    | Blocked -> false
    | Channel | Device_cell _ | Port_cell _ -> true
  in
  Array.iter
    (fun (p : Port.t) ->
      let ok =
        List.exists routable_cell (Grid.neighbours grid p.position)
      in
      if not ok then fail "Layout: port %s has no routable neighbour" p.name)
    ports;
  {
    grid;
    devices;
    ports;
    device_cells;
    routing = build_routing grid;
    port_dist = Array.make (Array.length ports) None;
    port_dist_lock = Mutex.create ();
  }

let grid t = t.grid
let routing t = t.routing

(* BFS over routable cells from the port's own cell.  This relaxes the
   through-routability constraint on interior cells, so the field
   lower-bounds the cell count of ANY routable walk between the port
   and a cell — including covering paths, whose interiors may contain
   port cells as segment endpoints — while still dominating the
   manhattan bound. *)
let compute_port_distances t src =
  let rt = t.routing in
  let n = rt.Routing.ncells in
  let dist = Array.make n max_int in
  let queue = Array.make n 0 in
  let head = ref 0 and tail = ref 0 in
  let si = Grid.index t.grid src in
  if Bytes.get rt.Routing.routable si = '\001' then begin
    dist.(si) <- 0;
    queue.(!tail) <- si;
    incr tail
  end;
  while !head < !tail do
    let here = queue.(!head) in
    incr head;
    let d = dist.(here) + 1 in
    for k = 4 * here to (4 * here) + 3 do
      let next = rt.Routing.nbr.(k) in
      if
        next >= 0
        && Bytes.get rt.Routing.routable next = '\001'
        && dist.(next) = max_int
      then begin
        dist.(next) <- d;
        queue.(!tail) <- next;
        incr tail
      end
    done
  done;
  dist

let port_distances t id =
  if id < 0 || id >= Array.length t.ports then raise Not_found;
  Mutex.lock t.port_dist_lock;
  let dist =
    match t.port_dist.(id) with
    | Some dist -> dist
    | None ->
      let dist = compute_port_distances t t.ports.(id).Port.position in
      t.port_dist.(id) <- Some dist;
      dist
  in
  Mutex.unlock t.port_dist_lock;
  dist
let width t = Grid.width t.grid
let height t = Grid.height t.grid

let devices t = Array.to_list t.devices
let ports t = Array.to_list t.ports
let flow_ports t = List.filter Port.is_flow (ports t)
let waste_ports t = List.filter Port.is_waste (ports t)

let device t id =
  if id < 0 || id >= Array.length t.devices then raise Not_found;
  t.devices.(id)

let port t id =
  if id < 0 || id >= Array.length t.ports then raise Not_found;
  t.ports.(id)

let device_by_name t name =
  Array.find_opt (fun (d : Device.t) -> String.equal d.name name) t.devices

let port_by_name t name =
  Array.find_opt (fun (p : Port.t) -> String.equal p.name name) t.ports

let device_cells t id =
  if id < 0 || id >= Array.length t.device_cells then raise Not_found;
  t.device_cells.(id)

let device_anchor t id =
  match device_cells t id with
  | c :: _ -> c
  | [] -> assert false (* make checks non-emptiness *)

let cell t c = Grid.get t.grid c

let routable t c =
  Grid.in_bounds t.grid c
  &&
  match Grid.get t.grid c with
  | Blocked -> false
  | Channel | Device_cell _ | Port_cell _ -> true

let through_routable t c =
  Grid.in_bounds t.grid c
  &&
  match Grid.get t.grid c with
  | Blocked | Port_cell _ -> false
  | Channel | Device_cell _ -> true

let devices_of_kind t kind =
  List.filter (fun (d : Device.t) -> Device.kind_equal d.kind kind) (devices t)

let render t =
  Grid.render t.grid (function
    | Blocked -> '.'
    | Channel -> '+'
    | Device_cell id -> Device.glyph t.devices.(id).kind
    | Port_cell id -> Port.glyph t.ports.(id).kind)

let pp ppf t = Format.pp_print_string ppf (render t)
