(** Parse a chip layout from the ASCII format [Layout.render] produces:

    {v
    .  blocked    +  channel     I  flow port    O  waste port
    M  mixer      H  heater      D  detector     F  filter     S  storage
    v}

    Each device glyph becomes a single-cell device; devices and ports are
    numbered row-major (e.g. the second [D] encountered is
    ["detector2"], the first [I] is ["in1"]).  [render (parse s) = s]
    for any well-formed map, which the tests rely on. *)

(** [parse text]
    @return the layout, or a message naming the offending line/column. *)
val parse : string -> (Layout.t, string) result
