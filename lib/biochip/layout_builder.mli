(** Mutable construction of [Layout.t] values, plus the concrete chip of
    the paper's motivating example (Fig. 2(a)). *)

type t

(** Fresh builder; every cell starts [Blocked]. *)
val create : width:int -> height:int -> t

(** Mark a single cell as channel.
    @raise Invalid_argument if the cell is out of bounds or already a
    device/port cell. *)
val channel : t -> Pdw_geometry.Coord.t -> unit

(** [channel_run t a b] marks the straight run of cells from [a] to [b]
    (inclusive) as channel.
    @raise Invalid_argument if [a] and [b] are not axis-aligned. *)
val channel_run : t -> Pdw_geometry.Coord.t -> Pdw_geometry.Coord.t -> unit

(** [add_device t ~kind ~name cells] places a device; returns it.
    @raise Invalid_argument if a cell is occupied or out of bounds. *)
val add_device :
  t -> kind:Device.kind -> name:string -> Pdw_geometry.Coord.t list ->
  Device.t

(** [add_port t ~kind ~name position]
    @raise Invalid_argument if the cell is occupied or out of bounds. *)
val add_port : t -> kind:Port.kind -> name:string -> Pdw_geometry.Coord.t ->
  Port.t

(** Validate and freeze.  @raise Invalid_argument per [Layout.make]. *)
val build : t -> Layout.t

(** The chip used by the motivating example (Section II, Fig. 2(a)): a
    central bus with mixer, filter, heater and two detectors attached,
    four flow ports (in1..in4) and four waste ports (out1..out4). *)
val fig2_layout : unit -> Layout.t
