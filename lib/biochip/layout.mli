(** A chip layout: the virtual grid [R] of Section III populated with
    channels, devices and ports.

    Fluids route through [Channel] and [Device_cell] cells; [Port_cell]
    cells are path endpoints only; [Blocked] cells are not routable. *)

type cell =
  | Blocked
  | Channel
  | Device_cell of int  (** device id *)
  | Port_cell of int    (** port id *)

type t

(** Packed, allocation-free routing view of a layout, precomputed once
    per layout for flat-array search kernels.  Cells are keyed by their
    row-major {!Pdw_geometry.Grid.index}. *)
module Routing : sig
  type t = private {
    width : int;
    height : int;
    ncells : int;  (** [width * height] *)
    routable : Bytes.t;  (** ['\001'] where a fluid may occupy the cell *)
    through : Bytes.t;
        (** ['\001'] where fluid may also pass through (routable and not
            a port) *)
    nbr : int array;
        (** four slots per cell in [Direction.all] order (north, south,
            west, east) — the same enumeration order as
            [Grid.neighbours] — holding the neighbour's cell index, or
            [-1] where out of bounds *)
  }
end

(** [make ~grid ~devices ~ports] validates:
    - device/port ids are dense and match the grid's cells;
    - every port cell sits at the port's recorded position;
    - every port has at least one routable neighbour;
    - every device has at least one cell.
    @raise Invalid_argument on violation. *)
val make :
  grid:cell Pdw_geometry.Grid.t ->
  devices:Device.t list ->
  ports:Port.t list ->
  t

val grid : t -> cell Pdw_geometry.Grid.t

(** The layout's packed routing table (built once by {!make}). *)
val routing : t -> Routing.t

(** [port_distances t id] is the true shortest-distance field of port
    [id]: for every cell index, the minimum number of edges of a walk
    from the port's cell to that cell over routable cells, or [max_int]
    when unreachable.  Dominates the manhattan bound, so it is a valid
    (and much tighter) lower bound for port-pair pruning in the flush
    search.  Computed on first use and cached on the layout;
    thread-safe. *)
val port_distances : t -> int -> int array

val width : t -> int
val height : t -> int

val devices : t -> Device.t list
val ports : t -> Port.t list
val flow_ports : t -> Port.t list
val waste_ports : t -> Port.t list

(** @raise Not_found when no such id. *)
val device : t -> int -> Device.t

val port : t -> int -> Port.t

val device_by_name : t -> string -> Device.t option
val port_by_name : t -> string -> Port.t option

(** Cells occupied by a device, in row-major order. *)
val device_cells : t -> int -> Pdw_geometry.Coord.t list

(** A representative cell of the device (its first cell). *)
val device_anchor : t -> int -> Pdw_geometry.Coord.t

val cell : t -> Pdw_geometry.Coord.t -> cell

(** A fluid can occupy/traverse this cell. *)
val routable : t -> Pdw_geometry.Coord.t -> bool

(** Routable, and not a port (ports terminate paths, never pass fluid
    through). *)
val through_routable : t -> Pdw_geometry.Coord.t -> bool

(** Devices of a given kind. *)
val devices_of_kind : t -> Device.kind -> Device.t list

(** ASCII map: ['.'] blocked, ['+'] channel, device glyphs, ['I']/['O']
    ports. *)
val render : t -> string

val pp : Format.formatter -> t -> unit
