(** A small line-based text format for bioassays, so downstream users can
    run their own protocols without writing OCaml:

    {v
    # comment
    assay MyProtocol
    device mixer 2
    device heater 1
    device detector 1
    op prep   mix    2  reagent:sample reagent:buffer
    op cook   heat   3  op:prep
    op read   detect 2  op:cook
    v}

    Operation names are unique identifiers; [op:NAME] references an
    earlier operation, [reagent:NAME] a reagent injected from a flow
    port.  Device lines build the device library (the [|D|] column). *)

(** [parse text] returns the benchmark or a message pinpointing the
    offending line. *)
val parse : string -> (Benchmarks.t, string) result

(** Inverse of [parse]: a canonical serialization that re-parses to an
    equivalent benchmark. *)
val to_string : name:string -> Benchmarks.t -> string
