module Device = Pdw_biochip.Device
module Fluid = Pdw_biochip.Fluid

type kind = Mix | Heat | Detect | Filter | Store

type t = { id : int; kind : kind; name : string; duration : int; park : bool }

let kind_to_string = function
  | Mix -> "mix"
  | Heat -> "heat"
  | Detect -> "detect"
  | Filter -> "filter"
  | Store -> "store"

let make ~id ~kind ?name ?(park = false) ~duration () =
  if duration <= 0 then invalid_arg "Operation.make: non-positive duration";
  let name =
    match name with
    | Some n -> n
    | None -> Printf.sprintf "o%d_%s" (id + 1) (kind_to_string kind)
  in
  { id; kind; name; duration; park }

let device_kind = function
  | Mix -> Device.Mixer
  | Heat -> Device.Heater
  | Detect -> Device.Detector
  | Filter -> Device.Filter
  | Store -> Device.Storage

let result_fluid kind input =
  match kind with
  | Mix -> input (* inputs are combined with Fluid.mix before this *)
  | Heat -> Fluid.heat input
  | Detect -> input (* detection is a non-destructive read *)
  | Filter -> Fluid.filter input
  | Store -> input

let min_inputs = function Mix -> 2 | Heat | Detect | Filter | Store -> 1

let equal a b = a.id = b.id

let pp ppf t =
  Format.fprintf ppf "%s(%s,%ds%s)" t.name (kind_to_string t.kind) t.duration
    (if t.park then ",park" else "")
