module Fluid = Pdw_biochip.Fluid
module Device = Pdw_biochip.Device

type input = From_op of int | From_reagent of Fluid.t

type node = { op : Operation.t; inputs : input list }

type t = {
  name : string;
  nodes : node array;
  succs : int list array;
  topo : int list;
  fluids : Fluid.t array; (* result fluid per op, in id order *)
}

let fail fmt = Printf.ksprintf invalid_arg fmt

let compute_topo nodes succs =
  let n = Array.length nodes in
  let indegree = Array.make n 0 in
  Array.iter
    (fun node ->
      List.iter
        (function
          | From_op _ -> indegree.(node.op.Operation.id) <- indegree.(node.op.Operation.id) + 1
          | From_reagent _ -> ())
        node.inputs)
    nodes;
  let queue = Queue.create () in
  Array.iteri (fun i d -> if d = 0 then Queue.add i queue) indegree;
  let order = ref [] in
  let visited = ref 0 in
  while not (Queue.is_empty queue) do
    let i = Queue.pop queue in
    order := i :: !order;
    incr visited;
    List.iter
      (fun s ->
        indegree.(s) <- indegree.(s) - 1;
        if indegree.(s) = 0 then Queue.add s queue)
      succs.(i)
  done;
  if !visited <> n then fail "Sequencing_graph: cycle detected";
  List.rev !order

let make ~name node_list =
  let nodes = Array.of_list node_list in
  let n = Array.length nodes in
  if n = 0 then fail "Sequencing_graph %s: no operations" name;
  Array.iteri
    (fun i node ->
      if node.op.Operation.id <> i then
        fail "Sequencing_graph %s: op ids must be dense, got %d at %d" name
          node.op.Operation.id i)
    nodes;
  let succs = Array.make n [] in
  Array.iteri
    (fun i node ->
      let arity = List.length node.inputs in
      if arity < Operation.min_inputs node.op.Operation.kind then
        fail "Sequencing_graph %s: op %d has %d inputs, needs >= %d" name i
          arity
          (Operation.min_inputs node.op.Operation.kind);
      List.iter
        (function
          | From_op j ->
            if j < 0 || j >= n then
              fail "Sequencing_graph %s: op %d references unknown op %d" name
                i j;
            if j = i then fail "Sequencing_graph %s: op %d feeds itself" name i;
            succs.(j) <- i :: succs.(j)
          | From_reagent r ->
            if Fluid.is_buffer r || Fluid.is_waste r then
              fail "Sequencing_graph %s: op %d takes buffer/waste as reagent"
                name i)
        node.inputs)
    nodes;
  let succs = Array.map List.rev succs in
  let topo = compute_topo nodes succs in
  (* Result fluids, computed in dependency order. *)
  let fluids = Array.make n Fluid.Buffer in
  List.iter
    (fun i ->
      let node = nodes.(i) in
      let input_fluids =
        List.map
          (function From_op j -> fluids.(j) | From_reagent r -> r)
          node.inputs
      in
      let combined =
        match input_fluids with
        | [] -> assert false (* arity checked above *)
        | f :: rest -> List.fold_left Fluid.mix f rest
      in
      fluids.(i) <- Operation.result_fluid node.op.Operation.kind combined)
    topo;
  { name; nodes; succs; topo; fluids }

let name t = t.name
let num_ops t = Array.length t.nodes

let num_edges t =
  Array.fold_left (fun acc node -> acc + List.length node.inputs) 0 t.nodes

let check_id t id =
  if id < 0 || id >= Array.length t.nodes then
    fail "Sequencing_graph %s: unknown op %d" t.name id

let op t id =
  check_id t id;
  t.nodes.(id).op

let inputs t id =
  check_id t id;
  t.nodes.(id).inputs

let ops t = Array.to_list (Array.map (fun node -> node.op) t.nodes)

let successors t id =
  check_id t id;
  t.succs.(id)

let predecessors t id =
  check_id t id;
  List.filter_map
    (function From_op j -> Some j | From_reagent _ -> None)
    t.nodes.(id).inputs

let sinks t =
  List.filter (fun i -> t.succs.(i) = []) (List.init (num_ops t) Fun.id)

let topological_order t = t.topo

let parked_ops t =
  (* A parked sink has nothing to fetch its result: park is meaningful
     only for ops that feed other ops. *)
  List.filter
    (fun i -> t.nodes.(i).op.Operation.park && t.succs.(i) <> [])
    (List.init (num_ops t) Fun.id)

let mark_parked t ids =
  List.iter (check_id t) ids;
  let nodes =
    Array.to_list
      (Array.mapi
         (fun i node ->
           if List.mem i ids then
             { node with op = { node.op with Operation.park = true } }
           else node)
         t.nodes)
  in
  make ~name:t.name nodes

let input_fluid t id =
  check_id t id;
  let input_fluids =
    List.map
      (function From_op j -> t.fluids.(j) | From_reagent r -> r)
      t.nodes.(id).inputs
  in
  match input_fluids with
  | [] -> assert false
  | f :: rest -> List.fold_left Fluid.mix f rest

let input_fluids t id =
  check_id t id;
  List.map
    (function From_op j -> t.fluids.(j) | From_reagent r -> r)
    t.nodes.(id).inputs

let result_fluid t id =
  check_id t id;
  t.fluids.(id)

let reagents t =
  let add acc = function
    | From_reagent r -> if List.exists (Fluid.equal r) acc then acc else r :: acc
    | From_op _ -> acc
  in
  Array.fold_left
    (fun acc node -> List.fold_left add acc node.inputs)
    [] t.nodes
  |> List.rev

let required_device_kinds t =
  let add acc kind =
    let rec go = function
      | [] -> [ (kind, 1) ]
      | (k, c) :: rest ->
        if Device.kind_equal k kind then (k, c + 1) :: rest
        else (k, c) :: go rest
    in
    go acc
  in
  Array.fold_left
    (fun acc node ->
      add acc (Operation.device_kind node.op.Operation.kind))
    [] t.nodes

let critical_path_duration t =
  let n = num_ops t in
  let finish = Array.make n 0 in
  List.iter
    (fun i ->
      let ready =
        List.fold_left
          (fun acc j -> max acc finish.(j))
          0 (predecessors t i)
      in
      finish.(i) <- ready + t.nodes.(i).op.Operation.duration)
    t.topo;
  Array.fold_left max 0 finish

let rec rename_fluid suffix = function
  | Fluid.Buffer -> Fluid.Buffer
  | Fluid.Waste -> Fluid.Waste
  | Fluid.Reagent name -> Fluid.Reagent (name ^ suffix)
  | Fluid.Mixed (a, b) ->
    Fluid.mix (rename_fluid suffix a) (rename_fluid suffix b)
  | Fluid.Heated f -> Fluid.Heated (rename_fluid suffix f)
  | Fluid.Filtered f -> Fluid.Filtered (rename_fluid suffix f)

let repeat t k =
  if k < 1 then fail "Sequencing_graph.repeat: need at least one copy";
  let n = num_ops t in
  let copy c =
    let suffix = Printf.sprintf "@%d" (c + 1) in
    Array.to_list
      (Array.map
         (fun node ->
           let op = node.op in
           {
             op =
               Operation.make
                 ~id:(op.Operation.id + (c * n))
                 ~kind:op.Operation.kind
                 ~name:(op.Operation.name ^ suffix)
                 ~park:op.Operation.park ~duration:op.Operation.duration ();
             inputs =
               List.map
                 (function
                   | From_op j -> From_op (j + (c * n))
                   | From_reagent r -> From_reagent (rename_fluid suffix r))
                 node.inputs;
           })
         t.nodes)
  in
  make
    ~name:(Printf.sprintf "%s x%d" t.name k)
    (List.concat (List.init k copy))

let pp ppf t =
  Format.fprintf ppf "@[<v>%s: |O|=%d |E|=%d@," t.name (num_ops t)
    (num_edges t);
  Array.iter
    (fun node ->
      Format.fprintf ppf "  %a <-" Operation.pp node.op;
      List.iter
        (function
          | From_op j -> Format.fprintf ppf " o%d" (j + 1)
          | From_reagent r -> Format.fprintf ppf " %a" Fluid.pp r)
        node.inputs;
      Format.fprintf ppf "@,")
    t.nodes;
  Format.fprintf ppf "@]"
