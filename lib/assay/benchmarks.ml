module Device = Pdw_biochip.Device
module Fluid = Pdw_biochip.Fluid

type t = {
  graph : Sequencing_graph.t;
  device_kinds : Device.kind list;
}

(* Small DSL: [node id kind duration inputs] where inputs mixes op
   references (`O j`, 1-based like the paper's o_j) and reagents (`R s`). *)
type src = O of int | R of string

let node ?park id kind duration srcs : Sequencing_graph.node =
  let input = function
    | O j -> Sequencing_graph.From_op (j - 1)
    | R s -> Sequencing_graph.From_reagent (Fluid.reagent s)
  in
  {
    op = Operation.make ~id:(id - 1) ~kind ?park ~duration ();
    inputs = List.map input srcs;
  }

(* A node whose result is parked in distributed channel storage until its
   consumers fetch it. *)
let pnode id kind duration srcs = node ~park:true id kind duration srcs

let graph name nodes = Sequencing_graph.make ~name nodes

let mixers n = List.init n (fun _ -> Device.Mixer)
let heaters n = List.init n (fun _ -> Device.Heater)
let detectors n = List.init n (fun _ -> Device.Detector)
let filters n = List.init n (fun _ -> Device.Filter)
let storages n = List.init n (fun _ -> Device.Storage)

(* PCR (7/5/15): three 3-reagent master-mix steps, two combination mixes,
   thermocycling, detection. *)
let pcr () =
  let open Operation in
  {
    graph =
      graph "PCR"
        [
          node 1 Mix 2 [ R "template"; R "primer_f"; R "primer_r" ];
          node 2 Mix 2 [ R "dntp"; R "polymerase"; R "mg_buffer" ];
          node 3 Mix 2 [ R "probe"; R "rox_dye"; R "water" ];
          node 4 Mix 2 [ O 1; O 2 ];
          node 5 Mix 2 [ O 4; O 3 ];
          node 6 Heat 4 [ O 5 ];
          node 7 Detect 2 [ O 6 ];
        ];
    device_kinds = mixers 2 @ heaters 1 @ detectors 1 @ storages 1;
  }

(* IVD (12/9/24): four sample/reagent preparations, four detections, four
   3-input luminescence mixes. *)
let ivd () =
  let open Operation in
  let sample i = Printf.sprintf "sample%d" i in
  let agent i = Printf.sprintf "agent%d" i in
  {
    graph =
      graph "IVD"
        [
          node 1 Mix 2 [ R (sample 1); R (agent 1) ];
          node 2 Mix 2 [ R (sample 2); R (agent 2) ];
          node 3 Mix 2 [ R (sample 3); R (agent 3) ];
          node 4 Mix 2 [ R (sample 4); R (agent 4) ];
          node 5 Detect 2 [ O 1 ];
          node 6 Detect 2 [ O 2 ];
          node 7 Detect 2 [ O 3 ];
          node 8 Detect 2 [ O 4 ];
          node 9 Mix 2 [ O 5; R "luminol"; R "oxidant" ];
          node 10 Mix 2 [ O 6; R "luminol"; R "oxidant" ];
          node 11 Mix 2 [ O 7; R "luminol"; R "oxidant" ];
          node 12 Mix 2 [ O 8; R "luminol"; R "oxidant" ];
        ];
    device_kinds = mixers 4 @ detectors 4 @ heaters 1;
  }

(* ProteinSplit (14/11/27): serial-dilution tree with detection and
   re-combination stages. *)
let protein_split () =
  let open Operation in
  {
    graph =
      graph "ProteinSplit"
        [
          node 1 Mix 3 [ R "protein"; R "diluent"; R "stabilizer" ];
          node 2 Mix 3 [ O 1; R "diluent"; R "salt" ];
          node 3 Mix 3 [ O 1; R "diluent"; R "salt2" ];
          node 4 Mix 2 [ O 2; R "diluent" ];
          node 5 Mix 2 [ O 2; R "diluent2" ];
          node 6 Mix 2 [ O 3; R "diluent" ];
          node 7 Mix 2 [ O 3; R "diluent2" ];
          node 8 Detect 2 [ O 4 ];
          node 9 Detect 2 [ O 5 ];
          node 10 Detect 2 [ O 6 ];
          node 11 Detect 2 [ O 7 ];
          node 12 Mix 3 [ O 8; O 9 ];
          node 13 Mix 3 [ O 10; O 11 ];
          node 14 Mix 2 [ O 12; O 13 ];
        ];
    device_kinds =
      mixers 5 @ detectors 4 @ heaters 1 @ storages 1;
  }

(* Kinase act-1 (4/9/16): few operations, each consuming many reagents. *)
let kinase_1 () =
  let open Operation in
  {
    graph =
      graph "Kinase act-1"
        [
          node 1 Mix 3
            [ R "kinase"; R "atp"; R "substrate"; R "mg_buffer"; R "dtt" ];
          node 2 Mix 3
            [ R "luciferase"; R "luciferin"; R "coa"; R "tris"; R "edta" ];
          node 3 Mix 3 [ O 1; O 2; R "stop_sol"; R "water" ];
          node 4 Mix 2 [ O 3; R "developer" ];
        ];
    device_kinds = mixers 4 @ detectors 2 @ heaters 2 @ storages 1;
  }

(* Kinase act-2 (12/9/48): dense variant — eight 4-reagent preparations
   feeding a two-level combination tree. *)
let kinase_2 () =
  let open Operation in
  let prep i =
    node i Mix 2
      [
        R (Printf.sprintf "enzyme%d" i);
        R (Printf.sprintf "substrate%d" i);
        R "atp";
        R "buffer_salt";
      ]
  in
  {
    graph =
      graph "Kinase act-2"
        [
          prep 1; prep 2; prep 3; prep 4; prep 5; prep 6; prep 7; prep 8;
          node 9 Mix 3 [ O 1; O 2; O 3; O 4 ];
          node 10 Mix 3 [ O 5; O 6; O 7; O 8 ];
          node 11 Mix 3 [ O 9; O 10; R "stop_sol"; R "water" ];
          node 12 Mix 2 [ O 11; R "developer"; R "luciferin"; R "coa" ];
        ];
    device_kinds = mixers 6 @ heaters 1 @ detectors 1 @ storages 1;
  }

(* Synthetic1 (10/12/15): a sparse chain exercising every device kind. *)
let synthetic_1 () =
  let open Operation in
  {
    graph =
      graph "Synthetic1"
        [
          node 1 Mix 2 [ R "a"; R "b" ];
          node 2 Mix 2 [ R "c"; R "d" ];
          node 3 Mix 2 [ R "e"; R "f" ];
          node 4 Mix 2 [ O 1; O 2 ];
          node 5 Mix 2 [ O 4; O 3 ];
          node 6 Filter 3 [ O 5 ];
          node 7 Heat 3 [ O 6 ];
          node 8 Detect 2 [ O 7 ];
          node 9 Store 2 [ O 8 ];
          node 10 Detect 2 [ O 9 ];
        ];
    device_kinds =
      mixers 4 @ heaters 2 @ detectors 2 @ filters 2 @ storages 2;
  }

(* Synthetic2 (15/13/24): three parallel branches recombined. *)
let synthetic_2 () =
  let open Operation in
  {
    graph =
      graph "Synthetic2"
        [
          node 1 Mix 2 [ R "a"; R "b" ];
          node 2 Mix 2 [ R "c"; R "d" ];
          node 3 Mix 2 [ R "e"; R "f" ];
          node 4 Mix 2 [ R "g"; R "h" ];
          node 5 Mix 2 [ R "i"; R "j" ];
          node 6 Mix 2 [ R "k"; R "l" ];
          node 7 Mix 2 [ O 1; O 2 ];
          node 8 Mix 2 [ O 3; O 4 ];
          node 9 Mix 2 [ O 5; O 6 ];
          node 10 Heat 3 [ O 7 ];
          node 11 Heat 3 [ O 8 ];
          node 12 Detect 2 [ O 9 ];
          node 13 Filter 3 [ O 10 ];
          node 14 Detect 2 [ O 11 ];
          node 15 Store 2 [ O 12 ];
        ];
    device_kinds =
      mixers 5 @ heaters 2 @ detectors 3 @ filters 1 @ storages 2;
  }

(* Synthetic3 (20/18/28): wide, mostly single-input pipeline stages. *)
let synthetic_3 () =
  let open Operation in
  {
    graph =
      graph "Synthetic3"
        [
          node 1 Mix 2 [ R "a"; R "b" ];
          node 2 Mix 2 [ R "c"; R "d" ];
          node 3 Mix 2 [ R "e"; R "f" ];
          node 4 Mix 2 [ R "g"; R "h" ];
          node 5 Mix 2 [ R "i"; R "j" ];
          node 6 Mix 2 [ R "k"; R "l" ];
          node 7 Mix 2 [ O 1; O 2 ];
          node 8 Mix 2 [ O 3; O 4 ];
          node 9 Heat 3 [ O 5 ];
          node 10 Heat 3 [ O 6 ];
          node 11 Detect 2 [ O 7 ];
          node 12 Detect 2 [ O 8 ];
          node 13 Filter 3 [ O 9 ];
          node 14 Filter 3 [ O 10 ];
          node 15 Heat 3 [ O 11 ];
          node 16 Store 2 [ O 12 ];
          node 17 Detect 2 [ O 13 ];
          node 18 Detect 2 [ O 14 ];
          node 19 Store 2 [ O 17 ];
          node 20 Store 2 [ O 18 ];
        ];
    device_kinds =
      mixers 6 @ heaters 3 @ detectors 4 @ filters 2 @ storages 3;
  }

(* The Fig. 1(c) assay: r1 filtered, mixed with r2, detected twice, with a
   heating branch recombined at the mixer. *)
let motivating () =
  let open Operation in
  {
    graph =
      graph "Motivating"
        [
          node 1 Filter 3 [ R "r1" ];
          node 2 Mix 2 [ O 1; R "r2" ];
          node 3 Detect 2 [ O 1 ];
          node 4 Detect 2 [ O 2 ];
          node 5 Heat 3 [ O 3 ];
          node 6 Mix 2 [ O 4; O 5 ];
          node 7 Detect 2 [ O 6 ];
        ];
    device_kinds =
      [ Device.Mixer; Device.Filter; Device.Detector; Device.Detector;
        Device.Heater ];
  }

(* Colorimetric protein assay: three-stage serial dilution, Biuret
   reagent added to each dilution level, optical read-out per level. *)
let cpa () =
  let open Operation in
  {
    graph =
      graph "CPA"
        [
          node 1 Mix 2 [ R "protein"; R "diluent" ];
          node 2 Mix 2 [ O 1; R "diluent" ];
          node 3 Mix 2 [ O 2; R "diluent" ];
          node 4 Mix 2 [ O 3; R "diluent" ];
          node 5 Mix 2 [ O 1; R "biuret" ];
          node 6 Mix 2 [ O 2; R "biuret" ];
          node 7 Mix 2 [ O 3; R "biuret" ];
          node 8 Mix 2 [ O 4; R "biuret" ];
          node 9 Store 3 [ O 5 ];
          node 10 Detect 2 [ O 9 ];
          node 11 Detect 2 [ O 6 ];
          node 12 Detect 2 [ O 7 ];
          node 13 Detect 2 [ O 8 ];
        ];
    device_kinds = mixers 4 @ detectors 3 @ storages 1;
  }

(* Nucleic-acid isolation: lysis mix, incubation, filtering, elution and
   a final purity check. *)
let nucleic_acid () =
  let open Operation in
  {
    graph =
      graph "NucleicAcid"
        [
          node 1 Mix 2 [ R "cells"; R "lysis_buffer" ];
          node 2 Store 4 [ O 1 ];
          node 3 Filter 3 [ O 2 ];
          node 4 Mix 2 [ O 3; R "wash_salt"; R "ethanol" ];
          node 5 Filter 3 [ O 4 ];
          node 6 Mix 2 [ O 5; R "elution_buffer" ];
          node 7 Heat 3 [ O 6 ];
          node 8 Detect 2 [ O 7 ];
        ];
    device_kinds =
      mixers 2 @ filters 2 @ heaters 1 @ detectors 1 @ storages 1;
  }

(* --- Storage-pressure assays -------------------------------------------
   Workloads in the regime of distributed channel storage (Tseng et al.;
   Liu et al.): intermediate products are parked in channel segments and
   fetched later, so parked-residue windows and channel holds dominate the
   wash problem.  Reported next to the Table II rows by [bench]. *)

(* Two master mixes parked while a slow thermal stage runs, then fetched
   into the combination chain. *)
let storage_shuttle () =
  let open Operation in
  {
    graph =
      graph "StorageShuttle"
        [
          pnode 1 Mix 2 [ R "a"; R "b" ];
          pnode 2 Mix 2 [ R "c"; R "d" ];
          node 3 Heat 6 [ R "e" ];
          node 4 Mix 2 [ O 1; O 3 ];
          node 5 Mix 2 [ O 2; O 4 ];
          node 6 Detect 2 [ O 5 ];
        ];
    device_kinds = mixers 2 @ heaters 1 @ detectors 1;
  }

(* Serial-dilution ladder where every dilution level is parked and fetched
   twice: once by the next level, once by its read-out mix.  Multi-fetch
   holds with long parked-residue windows. *)
let storage_ladder () =
  let open Operation in
  {
    graph =
      graph "StorageLadder"
        [
          pnode 1 Mix 2 [ R "protein"; R "diluent" ];
          pnode 2 Mix 2 [ O 1; R "diluent" ];
          pnode 3 Mix 2 [ O 2; R "diluent" ];
          node 4 Mix 2 [ O 1; R "biuret" ];
          node 5 Mix 2 [ O 2; R "biuret" ];
          node 6 Mix 2 [ O 3; R "biuret" ];
          node 7 Detect 2 [ O 4 ];
          node 8 Detect 2 [ O 5 ];
          node 9 Detect 2 [ O 6 ];
        ];
    device_kinds = mixers 3 @ detectors 2;
  }

(* Six preparations parked at once on a chip with few mixers: maximal
   concurrent channel-storage pressure, then two burst consumptions. *)
let storage_burst () =
  let open Operation in
  let prep i =
    pnode i Mix 2
      [ R (Printf.sprintf "enzyme%d" i); R (Printf.sprintf "substrate%d" i) ]
  in
  {
    graph =
      graph "StorageBurst"
        [
          prep 1; prep 2; prep 3; prep 4; prep 5; prep 6;
          node 7 Mix 3 [ O 1; O 2; O 3 ];
          node 8 Mix 3 [ O 4; O 5; O 6 ];
          node 9 Mix 2 [ O 7; O 8 ];
          node 10 Detect 2 [ O 9 ];
        ];
    device_kinds = mixers 3 @ detectors 1;
  }

let storage () =
  [
    ("StorageShuttle", storage_shuttle ());
    ("StorageLadder", storage_ladder ());
    ("StorageBurst", storage_burst ());
  ]

let extra () = [ ("CPA", cpa ()); ("NucleicAcid", nucleic_acid ()) ]

let all () =
  [
    ("PCR", pcr ());
    ("IVD", ivd ());
    ("ProteinSplit", protein_split ());
    ("Kinase act-1", kinase_1 ());
    ("Kinase act-2", kinase_2 ());
    ("Synthetic1", synthetic_1 ());
    ("Synthetic2", synthetic_2 ());
    ("Synthetic3", synthetic_3 ());
  ]

let find name =
  let norm = String.lowercase_ascii name in
  let matches (n, _) = String.equal (String.lowercase_ascii n) norm in
  match List.find_opt matches (all () @ extra () @ storage ()) with
  | Some (_, b) -> Some b
  | None ->
    if String.equal norm "motivating" then Some (motivating ()) else None
