(** The sequencing graph [G(O, E)] of a bioassay (Section II, Fig. 1(c)).

    Nodes are biochemical operations; an operation's inputs come either
    from other operations' results (dependency edges) or directly from
    reagents injected through flow ports.  Both are counted in [|E|], as
    every input implies one fluid-transportation task. *)

type input =
  | From_op of int                      (** result of another operation *)
  | From_reagent of Pdw_biochip.Fluid.t (** injected via a flow port *)

type node = { op : Operation.t; inputs : input list }

type t

(** [make ~name nodes] validates:
    - operation ids are dense [0 .. n-1] in list order;
    - every [From_op] reference exists and the graph is acyclic;
    - every operation has at least [Operation.min_inputs] inputs;
    - reagent inputs are neither buffer nor waste.
    @raise Invalid_argument on violation. *)
val make : name:string -> node list -> t

val name : t -> string
val num_ops : t -> int

(** Number of inputs across all operations: the [|E|] of Table II. *)
val num_edges : t -> int

(** @raise Invalid_argument on unknown id. *)
val op : t -> int -> Operation.t

val inputs : t -> int -> input list
val ops : t -> Operation.t list

(** Operations consuming the result of [id]. *)
val successors : t -> int -> int list

(** Operation ids feeding [id]. *)
val predecessors : t -> int -> int list

(** Operations whose result feeds no other operation; their product is
    collected at a waste/output port. *)
val sinks : t -> int list

(** Ids in dependency order (sources first). *)
val topological_order : t -> int list

(** Operations whose result is parked in channel storage before reuse:
    ops with [Operation.park] set {e and} at least one consumer.  A
    parked sink is ignored (there is nothing to fetch; its product goes
    straight to waste). *)
val parked_ops : t -> int list

(** [mark_parked t ids] returns a copy of [t] with [Operation.park] set
    on every op in [ids].  @raise Invalid_argument on unknown id. *)
val mark_parked : t -> int list -> t

(** Combined input fluid of an operation (reagents and upstream results
    folded with [Pdw_biochip.Fluid.mix]). *)
val input_fluid : t -> int -> Pdw_biochip.Fluid.t

(** The individual input fluids of an operation, one per input edge, in
    input order.  Residues of these fluids cannot contaminate traffic
    bound for the operation: they are about to be mixed anyway. *)
val input_fluids : t -> int -> Pdw_biochip.Fluid.t list

(** Fluid produced by an operation (memoized recursive evaluation). *)
val result_fluid : t -> int -> Pdw_biochip.Fluid.t

(** Distinct reagents consumed by the whole assay. *)
val reagents : t -> Pdw_biochip.Fluid.t list

(** Device kinds the assay requires, with multiplicity-of-use counts. *)
val required_device_kinds : t -> (Pdw_biochip.Device.kind * int) list

(** Lower bound on completion: longest duration-weighted dependency
    chain, ignoring transport. *)
val critical_path_duration : t -> int

(** [repeat t k] is the disjoint union of [k] copies of [t] — the
    batch-processing workload of running the same protocol on [k]
    different samples back to back on one chip.  Operation ids of copy
    [c] are offset by [c * num_ops t]; reagents are renamed per copy
    (sample [c] gets its own aliquots), so residues of one run *do*
    threaten the next and inter-run washing is required.
    @raise Invalid_argument if [k < 1]. *)
val repeat : t -> int -> t

val pp : Format.formatter -> t -> unit
