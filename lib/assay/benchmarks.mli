(** The eight assays of Table II (five real-life bioassays, three
    synthetic) plus the motivating example of Fig. 1(c).

    The published paper specifies each benchmark only by its
    [|O|/|D|/|E|] counts; the concrete protocols here are reconstructions
    with realistic operation mixes that match those counts exactly (see
    DESIGN.md, "Substitutions").  Device kind lists define the device
    library (the [|D|] column). *)

type t = {
  graph : Sequencing_graph.t;
  device_kinds : Pdw_biochip.Device.kind list;
      (** the device library; its length is Table II's [|D|] *)
}

(** PCR: 7/5/15 *)
val pcr : unit -> t

(** IVD: 12/9/24 *)
val ivd : unit -> t

(** ProteinSplit: 14/11/27 *)
val protein_split : unit -> t

(** Kinase act-1: 4/9/16 *)
val kinase_1 : unit -> t

(** Kinase act-2: 12/9/48 *)
val kinase_2 : unit -> t

(** Synthetic1: 10/12/15 *)
val synthetic_1 : unit -> t

(** Synthetic2: 15/13/24 *)
val synthetic_2 : unit -> t

(** Synthetic3: 20/18/28 *)
val synthetic_3 : unit -> t

(** The assay of Fig. 1(c): two reagents, seven operations, run on the
    [Pdw_biochip.Layout_builder.fig2_layout] chip. *)
val motivating : unit -> t

(** Table II rows in paper order: name, benchmark. *)
val all : unit -> (string * t) list

(** Colorimetric protein assay (CPA): a serial-dilution ladder of the
    protein sample, Biuret reagent mixing and optical detection — a
    classic continuous-flow benchmark beyond the paper's Table II.
    |O| = 13, |E| = 21. *)
val cpa : unit -> t

(** Nucleic-acid isolation in the style of Hong et al. [3]: cell lysis,
    incubation, filtering, elution and detection.  |O| = 8, |E| = 12. *)
val nucleic_acid : unit -> t

(** The extra (non-Table II) protocols: name, benchmark. *)
val extra : unit -> (string * t) list

(** Storage-pressure assays: workloads whose intermediate products are
    parked in distributed channel storage ([Operation.park]) and fetched
    later, stressing hold intervals and parked-residue windows. *)

(** StorageShuttle: two parked master mixes waiting on a slow thermal
    stage.  |O| = 6. *)
val storage_shuttle : unit -> t

(** StorageLadder: a dilution ladder whose every level is parked and
    fetched twice.  |O| = 9. *)
val storage_ladder : unit -> t

(** StorageBurst: six concurrent parks on a mixer-starved chip.
    |O| = 10. *)
val storage_burst : unit -> t

(** The storage-pressure assays: name, benchmark. *)
val storage : unit -> (string * t) list

(** [find name] is the benchmark with that Table II name
    (case-insensitive). *)
val find : string -> t option
