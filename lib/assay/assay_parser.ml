module Fluid = Pdw_biochip.Fluid
module Device = Pdw_biochip.Device

let device_kind_of_string = function
  | "mixer" -> Some Device.Mixer
  | "heater" -> Some Device.Heater
  | "detector" -> Some Device.Detector
  | "filter" -> Some Device.Filter
  | "storage" -> Some Device.Storage
  | _ -> None

let op_kind_of_string = function
  | "mix" -> Some Operation.Mix
  | "heat" -> Some Operation.Heat
  | "detect" -> Some Operation.Detect
  | "filter" -> Some Operation.Filter
  | "store" -> Some Operation.Store
  | _ -> None

let op_kind_to_string = function
  | Operation.Mix -> "mix"
  | Operation.Heat -> "heat"
  | Operation.Detect -> "detect"
  | Operation.Filter -> "filter"
  | Operation.Store -> "store"

type parse_state = {
  mutable assay_name : string option;
  mutable devices : Device.kind list; (* reversed *)
  mutable ops : (string * Operation.kind * int * bool * string list) list;
      (* reversed: name, kind, duration, park, raw inputs *)
}

let split_words line =
  String.split_on_char ' ' line
  |> List.concat_map (String.split_on_char '\t')
  |> List.filter (fun w -> w <> "")

let parse text =
  let state = { assay_name = None; devices = []; ops = [] } in
  let error line_no msg =
    Error (Printf.sprintf "line %d: %s" line_no msg)
  in
  let parse_line line_no line =
    let line =
      match String.index_opt line '#' with
      | Some i -> String.sub line 0 i
      | None -> line
    in
    match split_words line with
    | [] -> Ok ()
    | "assay" :: rest ->
      if rest = [] then error line_no "assay needs a name"
      else begin
        state.assay_name <- Some (String.concat " " rest);
        Ok ()
      end
    | [ "device"; kind; count ] -> (
      match (device_kind_of_string kind, int_of_string_opt count) with
      | Some k, Some n when n > 0 ->
        state.devices <- List.init n (fun _ -> k) @ state.devices;
        Ok ()
      | None, _ -> error line_no (Printf.sprintf "unknown device kind %S" kind)
      | _, (Some _ | None) -> error line_no "device count must be positive")
    | "op" :: name :: kind :: duration :: rest -> (
      (* Optional [park] token between the duration and the inputs:
         inputs always contain ':', so the keyword is unambiguous. *)
      let park, inputs =
        match rest with "park" :: inputs -> (true, inputs) | _ -> (false, rest)
      in
      match (op_kind_of_string kind, int_of_string_opt duration) with
      | Some k, Some d when d > 0 ->
        if String.contains name ':' then
          error line_no (Printf.sprintf "op name %S may not contain ':'" name)
        else if
          List.exists (fun (n, _, _, _, _) -> String.equal n name) state.ops
        then error line_no (Printf.sprintf "duplicate op %S" name)
        else begin
          state.ops <- (name, k, d, park, inputs) :: state.ops;
          Ok ()
        end
      | None, _ ->
        error line_no (Printf.sprintf "unknown operation kind %S" kind)
      | _, (Some _ | None) -> error line_no "duration must be positive")
    | word :: _ ->
      error line_no (Printf.sprintf "unrecognized directive %S" word)
  in
  let lines = String.split_on_char '\n' text in
  let rec parse_all line_no = function
    | [] -> Ok ()
    | line :: rest -> (
      match parse_line line_no line with
      | Ok () -> parse_all (line_no + 1) rest
      | Error _ as e -> e)
    in
  match parse_all 1 lines with
  | Error _ as e -> e
  | Ok () ->
    let ops = List.rev state.ops in
    let index_of name =
      let rec go i = function
        | [] -> None
        | (n, _, _, _, _) :: rest ->
          if String.equal n name then Some i else go (i + 1) rest
      in
      go 0 ops
    in
    let resolve_input raw =
      match String.index_opt raw ':' with
      | None ->
        Error
          (Printf.sprintf
             "input %S must be reagent:NAME or op:NAME" raw)
      | Some i -> (
        let prefix = String.sub raw 0 i in
        let name = String.sub raw (i + 1) (String.length raw - i - 1) in
        match prefix with
        | "reagent" when name <> "" ->
          Ok (Sequencing_graph.From_reagent (Fluid.reagent name))
        | "op" -> (
          match index_of name with
          | Some j -> Ok (Sequencing_graph.From_op j)
          | None -> Error (Printf.sprintf "unknown op %S" name))
        | _ ->
          Error
            (Printf.sprintf "input %S must be reagent:NAME or op:NAME" raw))
    in
    let rec build id acc = function
      | [] -> Ok (List.rev acc)
      | (name, kind, duration, park, raw_inputs) :: rest -> (
        let rec resolve acc = function
          | [] -> Ok (List.rev acc)
          | raw :: more -> (
            match resolve_input raw with
            | Ok input -> resolve (input :: acc) more
            | Error _ as e -> e)
        in
        match resolve [] raw_inputs with
        | Error e -> Error (Printf.sprintf "op %S: %s" name e)
        | Ok inputs ->
          let node =
            {
              Sequencing_graph.op =
                Operation.make ~id ~kind ~name ~park ~duration ();
              inputs;
            }
          in
          build (id + 1) (node :: acc) rest)
    in
    (match build 0 [] ops with
    | Error _ as e -> e
    | Ok nodes -> (
      if nodes = [] then Error "no operations"
      else
        let name = Option.value state.assay_name ~default:"unnamed" in
        match Sequencing_graph.make ~name nodes with
        | graph ->
          let device_kinds = List.rev state.devices in
          if device_kinds = [] then Error "no devices"
          else Ok { Benchmarks.graph; device_kinds }
        | exception Invalid_argument m -> Error m))

let to_string ~name (b : Benchmarks.t) =
  let buf = Buffer.create 512 in
  Buffer.add_string buf (Printf.sprintf "assay %s\n" name);
  let counts = Hashtbl.create 5 in
  List.iter
    (fun kind ->
      Hashtbl.replace counts kind
        (1 + Option.value (Hashtbl.find_opt counts kind) ~default:0))
    b.Benchmarks.device_kinds;
  List.iter
    (fun kind ->
      match Hashtbl.find_opt counts kind with
      | Some n ->
        Buffer.add_string buf
          (Printf.sprintf "device %s %d\n" (Device.kind_to_string kind) n);
        Hashtbl.remove counts kind
      | None -> ())
    b.Benchmarks.device_kinds;
  let graph = b.Benchmarks.graph in
  List.iter
    (fun (op : Operation.t) ->
      let inputs =
        List.map
          (function
            | Sequencing_graph.From_op j ->
              Printf.sprintf "op:%s"
                (Sequencing_graph.op graph j).Operation.name
            | Sequencing_graph.From_reagent r ->
              Printf.sprintf "reagent:%s" (Fluid.to_string r))
          (Sequencing_graph.inputs graph op.Operation.id)
      in
      Buffer.add_string buf
        (Printf.sprintf "op %s %s %d %s%s\n" op.Operation.name
           (op_kind_to_string op.Operation.kind)
           op.Operation.duration
           (if op.Operation.park then "park " else "")
           (String.concat " " inputs)))
    (Sequencing_graph.ops graph);
  Buffer.contents buf
