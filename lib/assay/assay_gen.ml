module Device = Pdw_biochip.Device
module Fluid = Pdw_biochip.Fluid

let kinds = [| Operation.Mix; Heat; Detect; Filter; Store |]

let random ?(min_ops = 3) ?(max_ops = 10) ?(park_fraction = 0.0) ~seed () =
  if min_ops < 1 || max_ops < min_ops then
    invalid_arg "Assay_gen.random: bad op range";
  if park_fraction < 0.0 || park_fraction > 1.0 then
    invalid_arg "Assay_gen.random: park_fraction outside [0, 1]";
  let rng = Random.State.make [| seed |] in
  let int_in lo hi = lo + Random.State.int rng (hi - lo + 1) in
  let n = int_in min_ops max_ops in
  (* Ops feeding nothing yet, so the graph stays connected-ish: prefer
     consuming dangling results. *)
  let dangling = ref [] in
  let reagent_pool = [| "ra"; "rb"; "rc"; "rd"; "re"; "rf" |] in
  let pick_reagent () =
    Sequencing_graph.From_reagent
      (Fluid.reagent reagent_pool.(Random.State.int rng (Array.length reagent_pool)))
  in
  let pick_input i =
    (* Half the time consume a dangling result when one exists. *)
    match !dangling with
    | j :: rest when i > 0 && Random.State.bool rng ->
      dangling := rest;
      Sequencing_graph.From_op j
    | _ ->
      if i > 0 && Random.State.int rng 3 = 0 then
        Sequencing_graph.From_op (Random.State.int rng i)
      else pick_reagent ()
  in
  let nodes =
    List.init n (fun i ->
        let kind =
          if i = 0 then Operation.Mix
          else kinds.(Random.State.int rng (Array.length kinds))
        in
        let arity =
          match kind with
          | Operation.Mix -> int_in 2 3
          | Heat | Detect | Filter | Store -> 1
        in
        let inputs = List.init arity (fun _ -> pick_input i) in
        dangling := i :: !dangling;
        let park =
          park_fraction > 0.0 && Random.State.float rng 1.0 < park_fraction
        in
        {
          Sequencing_graph.op =
            Operation.make ~id:i ~kind ~park ~duration:(int_in 2 4) ();
          inputs;
        })
  in
  let graph = Sequencing_graph.make ~name:(Printf.sprintf "random%d" seed) nodes in
  let device_kinds =
    List.concat_map
      (fun (kind, uses) ->
        let copies = if uses > 2 then 2 else 1 in
        List.init copies (fun _ -> kind))
      (Sequencing_graph.required_device_kinds graph)
  in
  { Benchmarks.graph; device_kinds }
