(** Biochemical operations, the nodes [O] of a sequencing graph.  Each
    operation runs on a device of the matching kind for at least its
    protocol duration (Eq. (1)). *)

type kind = Mix | Heat | Detect | Filter | Store

type t = {
  id : int;
  kind : kind;
  name : string;
  duration : int;  (** seconds; the [t(o_i)] of Eq. (1) *)
  park : bool;
      (** The operation's result is parked in a channel segment (distributed
          channel storage) instead of flowing straight to its consumer; it
          must be fetched before reuse.  Distinct from the [Store] kind,
          which occupies a storage {e device}. *)
}

val make :
  id:int -> kind:kind -> ?name:string -> ?park:bool -> duration:int -> unit -> t

(** Device kind an operation of this kind binds to. *)
val device_kind : kind -> Pdw_biochip.Device.kind

(** How an operation transforms its (already combined) input fluid. *)
val result_fluid : kind -> Pdw_biochip.Fluid.t -> Pdw_biochip.Fluid.t

(** Minimum number of inputs for this kind (2 for [Mix], 1 otherwise). *)
val min_inputs : kind -> int

val equal : t -> t -> bool
val kind_to_string : kind -> string
val pp : Format.formatter -> t -> unit
