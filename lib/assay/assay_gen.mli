(** Seeded random assay generator for property-based tests.  Kept free of
    any QCheck dependency: tests generate a seed and call [random]. *)

(** [random ~seed ()] builds a valid benchmark (sequencing graph + device
    library) with between [min_ops] and [max_ops] operations (defaults 3
    and 10).  [park_fraction] (default 0.0: storage-free) is the
    probability that each operation is marked [Operation.park].  The same
    seed always yields the same assay. *)
val random :
  ?min_ops:int ->
  ?max_ops:int ->
  ?park_fraction:float ->
  seed:int ->
  unit ->
  Benchmarks.t
