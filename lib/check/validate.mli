(** One-stop verification of an optimization outcome, bundling every
    checker in the repository:

    - structural schedule constraints (Eqs. (1)–(8), (19), (20)) via
      [Pdw_synth.Schedule.violations];
    - analytic contamination freedom via
      [Pdw_wash.Contamination.violations];
    - the independent discrete-time simulator
      ([Pdw_sim.Flow_sim.issues]) — a differential check, since it
      re-implements the fluidic semantics from scratch;
    - agreement between the two implementations;
    - wash self-consistency: every wash path covers its declared targets
      and runs flow port → waste port;
    - control-layer derivability: a consistent valve actuation plan
      exists;
    - planner metadata: convergence flag and metrics match the schedule.

    The `pdw verify` CLI command and the integration tests use this as
    the single source of truth for "is this result right". *)

type finding = {
  check : string;   (** which checker produced it *)
  detail : string;  (** human-readable description *)
}

type report = {
  checks_run : int;
  findings : finding list;  (** empty iff the outcome is fully verified *)
}

val ok : report -> bool

val outcome : Pdw_wash.Wash_plan.outcome -> report

(** The subset of checks that apply to any schedule (no washes/metrics
    required) — usable on baselines. *)
val schedule : Pdw_synth.Schedule.t -> report

val pp : Format.formatter -> report -> unit
