module Coord = Pdw_geometry.Coord
module Gpath = Pdw_geometry.Gpath
module Layout = Pdw_biochip.Layout
module Port = Pdw_biochip.Port
module Task = Pdw_synth.Task
module Schedule = Pdw_synth.Schedule
module Actuation = Pdw_synth.Actuation
module Flow_sim = Pdw_sim.Flow_sim
module Contamination = Pdw_wash.Contamination
module Wash_plan = Pdw_wash.Wash_plan
module Metrics = Pdw_wash.Metrics

type finding = { check : string; detail : string }

type report = { checks_run : int; findings : finding list }

let ok r = r.findings = []

(* Each checker returns its findings; the report counts every checker
   that ran, found something or not. *)
let run_checks checks =
  let findings =
    List.concat_map (fun (check, f) ->
        List.map (fun detail -> { check; detail }) (f ()))
      checks
  in
  { checks_run = List.length checks; findings }

let structural sched () = Schedule.violations sched

let analytic_contamination sched () =
  List.map
    (Format.asprintf "%a" Contamination.pp_violation)
    (Contamination.violations (Contamination.analyze sched))

let simulator sched () =
  List.map
    (Format.asprintf "%a" Flow_sim.pp_issue)
    (Flow_sim.issues (Flow_sim.run sched))

let implementations_agree sched () =
  let analytic =
    Contamination.violations (Contamination.analyze sched) <> []
  in
  let simulated =
    List.exists
      (function
        | Flow_sim.Contaminated_flow _ -> true
        | Flow_sim.Double_occupancy _ -> false)
      (Flow_sim.issues (Flow_sim.run sched))
  in
  if analytic = simulated then []
  else
    [
      Printf.sprintf
        "analytic model says %s but the simulator says %s"
        (if analytic then "contaminated" else "clean")
        (if simulated then "contaminated" else "clean");
    ]

let wash_consistency sched () =
  let layout = Schedule.layout sched in
  let port_of c =
    match Layout.cell layout c with
    | Layout.Port_cell id -> Some (Layout.port layout id)
    | Layout.Blocked | Layout.Channel | Layout.Device_cell _ -> None
  in
  List.concat_map
    (fun (task, _, _) ->
      match task.Task.purpose with
      | Task.Wash { targets; _ } ->
        let covers =
          if Gpath.covers task.Task.path targets then []
          else
            [ Printf.sprintf "wash #%d misses some of its targets"
                task.Task.id ]
        in
        let endpoints =
          match
            ( port_of (Gpath.source task.Task.path),
              port_of (Gpath.target task.Task.path) )
          with
          | Some fp, Some wp when Port.is_flow fp && Port.is_waste wp -> []
          | _ ->
            [ Printf.sprintf
                "wash #%d does not run flow port -> waste port" task.Task.id ]
        in
        covers @ endpoints
      | Task.Transport _ | Task.Removal _ | Task.Disposal _ | Task.Park _
      | Task.Fetch _ ->
        [])
    (Schedule.task_runs sched)

let actuation sched () =
  match Actuation.of_schedule sched with
  | plan ->
    if Actuation.switching_count plan mod 2 = 0 then []
    else [ "actuation plan has unbalanced transitions" ]
  | exception Invalid_argument m -> [ m ]

let schedule sched =
  run_checks
    [
      ("structural", structural sched);
      ("contamination", analytic_contamination sched);
      ("simulator", simulator sched);
      ("agreement", implementations_agree sched);
      ("wash-consistency", wash_consistency sched);
      ("actuation", actuation sched);
    ]

let planner_metadata (o : Wash_plan.outcome) () =
  let converged =
    if o.Wash_plan.converged then []
    else [ "planner did not converge within its round budget" ]
  in
  let wash_count =
    let in_schedule = List.length (Schedule.wash_runs o.Wash_plan.schedule) in
    let claimed = o.Wash_plan.metrics.Metrics.n_wash in
    if in_schedule = claimed then []
    else
      [
        Printf.sprintf "metrics claim %d washes but the schedule has %d"
          claimed in_schedule;
      ]
  in
  let delay =
    let expect =
      Schedule.assay_completion o.Wash_plan.schedule
      - Schedule.assay_completion o.Wash_plan.baseline
    in
    if expect = o.Wash_plan.metrics.Metrics.t_delay then []
    else [ "metrics delay does not match baseline/schedule completion" ]
  in
  converged @ wash_count @ delay

let outcome (o : Wash_plan.outcome) =
  let base = schedule o.Wash_plan.schedule in
  let extra = run_checks [ ("planner", planner_metadata o) ] in
  {
    checks_run = base.checks_run + extra.checks_run;
    findings = base.findings @ extra.findings;
  }

let pp ppf r =
  if ok r then
    Format.fprintf ppf "all %d checks passed" r.checks_run
  else begin
    Format.fprintf ppf "@[<v>%d finding(s) across %d checks:@,"
      (List.length r.findings) r.checks_run;
    List.iter
      (fun f -> Format.fprintf ppf "  [%s] %s@," f.check f.detail)
      r.findings;
    Format.fprintf ppf "@]"
  end
