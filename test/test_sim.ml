(* Tests for the discrete-time flow simulator, including the differential
   check against the analytic contamination model: two independent
   implementations of the fluidic semantics must agree on whether a
   schedule is clean and on how many contaminated uses it has. *)

module Coord = Pdw_geometry.Coord
module Layout_builder = Pdw_biochip.Layout_builder
module Benchmarks = Pdw_assay.Benchmarks
module Schedule = Pdw_synth.Schedule
module Synthesis = Pdw_synth.Synthesis
module Flow_sim = Pdw_sim.Flow_sim
module Contamination = Pdw_wash.Contamination
module Pdw = Pdw_wash.Pdw
module Dawo = Pdw_wash.Dawo
module Wash_plan = Pdw_wash.Wash_plan

let count_contaminated issues =
  List.length
    (List.filter
       (function
         | Flow_sim.Contaminated_flow _ -> true
         | Flow_sim.Double_occupancy _ -> false)
       issues)

let count_double issues =
  List.length
    (List.filter
       (function
         | Flow_sim.Double_occupancy _ -> true
         | Flow_sim.Contaminated_flow _ -> false)
       issues)

let test_sim_runs_baseline () =
  let s = Synthesis.synthesize (Benchmarks.pcr ()) in
  let sim = Flow_sim.run s.Synthesis.schedule in
  Alcotest.(check int) "horizon = makespan"
    (Schedule.makespan s.Synthesis.schedule)
    (Flow_sim.makespan sim);
  (* A valid schedule never double-occupies a cell. *)
  Alcotest.(check int) "no double occupancy" 0
    (count_double (Flow_sim.issues sim))

let test_sim_detects_baseline_contamination () =
  let s =
    Synthesis.synthesize
      ~layout:(Layout_builder.fig2_layout ())
      (Benchmarks.motivating ())
  in
  let sim = Flow_sim.run s.Synthesis.schedule in
  Alcotest.(check bool) "baseline contaminated" true
    (count_contaminated (Flow_sim.issues sim) > 0)

let test_sim_pdw_schedule_clean () =
  let s =
    Synthesis.synthesize
      ~layout:(Layout_builder.fig2_layout ())
      (Benchmarks.motivating ())
  in
  let o = Pdw.optimize s in
  let sim = Flow_sim.run o.Wash_plan.schedule in
  Alcotest.(check (list string)) "no issues" []
    (List.map (Format.asprintf "%a" Flow_sim.pp_issue) (Flow_sim.issues sim))

let test_sim_occupancy_bounds () =
  let s = Synthesis.synthesize (Benchmarks.synthetic_1 ()) in
  let sim = Flow_sim.run s.Synthesis.schedule in
  List.iter
    (fun (_, f) ->
      Alcotest.(check bool) "occupancy in (0, 1]" true (f > 0.0 && f <= 1.0))
    (Flow_sim.occupancy sim);
  let u = Flow_sim.utilization sim in
  Alcotest.(check bool) "utilization in (0, 1)" true (u > 0.0 && u < 1.0)

let test_sim_cell_state_api () =
  let s = Synthesis.synthesize (Benchmarks.pcr ()) in
  let sim = Flow_sim.run s.Synthesis.schedule in
  (* At t=0 some transport is running: at least one cell occupied. *)
  let layout = s.Synthesis.layout in
  let occupied_at t =
    List.exists
      (fun c -> (Flow_sim.cell_state sim ~time:t c).Flow_sim.occupant <> None)
      (Pdw_geometry.Grid.coords (Pdw_biochip.Layout.grid layout))
  in
  Alcotest.(check bool) "t=0 active" true (occupied_at 0);
  Alcotest.check_raises "out of range"
    (Invalid_argument
       (Printf.sprintf "Flow_sim.cell_state: time %d outside [0, %d]"
          (Flow_sim.makespan sim + 1)
          (Flow_sim.makespan sim)))
    (fun () ->
      ignore
        (Flow_sim.cell_state sim
           ~time:(Flow_sim.makespan sim + 1)
           (Coord.make 0 0)))

let test_sim_render_frame () =
  let s =
    Synthesis.synthesize
      ~layout:(Layout_builder.fig2_layout ())
      (Benchmarks.motivating ())
  in
  let sim = Flow_sim.run s.Synthesis.schedule in
  let frame = Flow_sim.render_frame sim ~time:1 in
  Alcotest.(check int) "7 rows" 7
    (List.length (String.split_on_char '\n' frame));
  Alcotest.(check bool) "something flows at t=1" true
    (String.contains frame '#')

(* The differential property: simulator and analytic model agree. *)
let agree schedule =
  let sim_dirty = count_contaminated (Flow_sim.issues (Flow_sim.run schedule)) in
  let analytic_dirty =
    List.length (Contamination.violations (Contamination.analyze schedule))
  in
  (sim_dirty = 0) = (analytic_dirty = 0)

let test_differential_benchmarks () =
  List.iter
    (fun (name, b) ->
      let s = Synthesis.synthesize b in
      Alcotest.(check bool) (name ^ " baseline agreement") true
        (agree s.Synthesis.schedule);
      let pdw = Pdw.optimize s in
      Alcotest.(check bool) (name ^ " pdw agreement") true
        (agree pdw.Wash_plan.schedule);
      let dawo = Dawo.optimize s in
      Alcotest.(check bool) (name ^ " dawo agreement") true
        (agree dawo.Wash_plan.schedule))
    (Benchmarks.all ())

let prop_differential_random =
  QCheck2.Test.make
    ~name:"simulator and analytic model agree on random assays" ~count:25
    QCheck2.Gen.(int_range 0 10_000)
    (fun seed ->
      let b = Pdw_assay.Assay_gen.random ~max_ops:7 ~seed () in
      let s = Synthesis.synthesize b in
      let pdw = Pdw.optimize s in
      agree s.Synthesis.schedule && agree pdw.Wash_plan.schedule)

let prop_no_double_occupancy_random =
  QCheck2.Test.make
    ~name:"simulated schedules never double-occupy a cell" ~count:25
    QCheck2.Gen.(int_range 0 10_000)
    (fun seed ->
      let b = Pdw_assay.Assay_gen.random ~max_ops:7 ~seed () in
      let s = Synthesis.synthesize b in
      let pdw = Pdw.optimize s in
      count_double (Flow_sim.issues (Flow_sim.run s.Synthesis.schedule)) = 0
      && count_double (Flow_sim.issues (Flow_sim.run pdw.Wash_plan.schedule))
         = 0)

(* --- failure paths: the simulator on malformed or degenerate input --- *)

(* A hand-built schedule that breaks Eq. 3: two runs overlap in time on
   the same device.  The structural checker must flag it, and the
   simulator must replay it anyway and report the double occupancy
   (rather than crash — it exists to diagnose exactly such schedules). *)
let test_sim_overlapping_entries () =
  let s = Synthesis.synthesize (Benchmarks.pcr ()) in
  let schedule = s.Synthesis.schedule in
  let graph = Schedule.graph schedule in
  let layout = Schedule.layout schedule in
  let device = List.hd (Pdw_biochip.Layout.devices layout) in
  let d = device.Pdw_biochip.Device.id in
  let binding = Array.make (Pdw_assay.Sequencing_graph.num_ops graph) d in
  let bad =
    Schedule.make ~graph ~layout ~binding
      [
        Schedule.Op_run { op_id = 0; device_id = d; start = 0; finish = 5 };
        Schedule.Op_run { op_id = 1; device_id = d; start = 2; finish = 6 };
      ]
  in
  Alcotest.(check bool) "structural checker flags the overlap" true
    (Schedule.violations bad <> []);
  let sim = Flow_sim.run bad in
  Alcotest.(check bool) "simulator reports double occupancy" true
    (count_double (Flow_sim.issues sim) > 0)

(* A zero-duration run ([start = finish]) occupies nothing and deposits
   its residue at its (instant) finish; the simulator must step through
   it without raising. *)
let test_sim_zero_duration_op () =
  let s = Synthesis.synthesize (Benchmarks.pcr ()) in
  let schedule = s.Synthesis.schedule in
  let graph = Schedule.graph schedule in
  let layout = Schedule.layout schedule in
  let device = List.hd (Pdw_biochip.Layout.devices layout) in
  let d = device.Pdw_biochip.Device.id in
  let binding = Array.make (Pdw_assay.Sequencing_graph.num_ops graph) d in
  let degenerate =
    Schedule.make ~graph ~layout ~binding
      [ Schedule.Op_run { op_id = 0; device_id = d; start = 0; finish = 0 } ]
  in
  let sim = Flow_sim.run degenerate in
  Alcotest.(check int) "zero-length horizon" 0 (Flow_sim.makespan sim);
  Alcotest.(check int) "no double occupancy" 0
    (count_double (Flow_sim.issues sim));
  (* The frame at t = 0 must render and the cell-state API must answer. *)
  let cell = List.hd (Pdw_biochip.Layout.device_cells layout d) in
  let st = Flow_sim.cell_state sim ~time:0 cell in
  Alcotest.(check bool) "cell unoccupied at the instant boundary" true
    (st.Flow_sim.occupant = None);
  ignore (Flow_sim.render_frame sim ~time:0)

let () =
  Alcotest.run "pdw_sim"
    [
      ( "simulator",
        [
          Alcotest.test_case "runs baseline" `Quick test_sim_runs_baseline;
          Alcotest.test_case "detects contamination" `Quick
            test_sim_detects_baseline_contamination;
          Alcotest.test_case "PDW schedule clean" `Quick
            test_sim_pdw_schedule_clean;
          Alcotest.test_case "occupancy bounds" `Quick
            test_sim_occupancy_bounds;
          Alcotest.test_case "cell-state API" `Quick test_sim_cell_state_api;
          Alcotest.test_case "render frame" `Quick test_sim_render_frame;
        ] );
      ( "failure paths",
        [
          Alcotest.test_case "overlapping entries" `Quick
            test_sim_overlapping_entries;
          Alcotest.test_case "zero-duration op" `Quick
            test_sim_zero_duration_op;
        ] );
      ( "differential",
        [
          Alcotest.test_case "all benchmarks, all planners" `Slow
            test_differential_benchmarks;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [ prop_differential_random; prop_no_double_occupancy_random ] );
    ]
