(* Tests for the observability layer (lib/obs): span nesting and
   exception safety, counter monotonicity, the no-op guarantee when
   disabled, Chrome-trace export well-formedness (checked with a small
   JSON parser below), and a regression that tracing never changes the
   planner's metrics — Json_export output byte-for-byte. *)

module Trace = Pdw_obs.Trace
module Counters = Pdw_obs.Counters
module Trace_export = Pdw_obs.Trace_export
module Events = Pdw_obs.Events
module Json = Pdw_obs.Json
module Histogram = Pdw_obs.Histogram
module Clock = Pdw_obs.Clock
module Reqtrace = Pdw_obs.Reqtrace

(* Every test starts from a clean, enabled recorder with a fake clock it
   can step, and leaves the layer disabled on the real clock. *)
let fake_now = ref 0.0

let with_obs f () =
  Trace.reset ();
  Counters.reset ();
  Trace.set_clock (fun () -> !fake_now);
  fake_now := 0.0;
  Trace.set_enabled true;
  Counters.set_enabled true;
  Fun.protect f ~finally:(fun () ->
      Trace.set_enabled false;
      Counters.set_enabled false;
      Events.set_enabled false;
      Trace.set_clock Unix.gettimeofday;
      Trace.reset ();
      Counters.reset ();
      Events.reset ())

let advance dt = fake_now := !fake_now +. dt

(* --- spans --- *)

let test_span_nesting () =
  Trace.with_span ~cat:"t" "outer" (fun () ->
      advance 1.0;
      Trace.with_span ~cat:"t" "inner" (fun () -> advance 2.0);
      advance 4.0);
  match Trace.events () with
  | [ inner; outer ] ->
    (* Completion order: the child finishes (and is recorded) first. *)
    Alcotest.(check string) "inner name" "inner" inner.Trace.name;
    Alcotest.(check string) "outer name" "outer" outer.Trace.name;
    Alcotest.(check (list string))
      "inner path" [ "outer"; "inner" ] inner.Trace.path;
    Alcotest.(check (list string)) "outer path" [ "outer" ] outer.Trace.path;
    Alcotest.(check (float 1e-9)) "inner ts" 1.0 inner.Trace.ts;
    Alcotest.(check (float 1e-9)) "inner dur" 2.0 inner.Trace.dur;
    Alcotest.(check (float 1e-9)) "outer dur" 7.0 outer.Trace.dur;
    (* A span never outlives its parent. *)
    Alcotest.(check bool) "containment" true
      (outer.Trace.ts <= inner.Trace.ts
      && inner.Trace.ts +. inner.Trace.dur
         <= outer.Trace.ts +. outer.Trace.dur)
  | evs -> Alcotest.failf "expected 2 events, got %d" (List.length evs)

let test_span_exception_safety () =
  (try
     Trace.with_span "outer" (fun () ->
         Trace.with_span "boom" (fun () -> failwith "boom"))
   with Failure _ -> ());
  (* Both spans were recorded despite the raise, and the stack unwound:
     a later span is not nested under the dead ones. *)
  Trace.with_span "after" (fun () -> ());
  let names = List.map (fun (e : Trace.event) -> e.Trace.name) (Trace.events ()) in
  Alcotest.(check (list string)) "events" [ "boom"; "outer"; "after" ] names;
  let after = List.nth (Trace.events ()) 2 in
  Alcotest.(check (list string)) "clean stack" [ "after" ] after.Trace.path

let test_span_args () =
  Trace.with_span ~args:[ ("round", "3") ] "tagged" (fun () -> ());
  match Trace.events () with
  | [ e ] ->
    Alcotest.(check (list (pair string string)))
      "args" [ ("round", "3") ] e.Trace.args
  | _ -> Alcotest.fail "expected one event"

let test_disabled_records_nothing () =
  Trace.set_enabled false;
  Counters.set_enabled false;
  let c = Counters.counter "test.disabled.counter" in
  let before = Counters.value c in
  let r =
    Trace.with_span "ghost" (fun () ->
        Counters.incr c;
        Counters.add c 7;
        17)
  in
  Alcotest.(check int) "result still returned" 17 r;
  Alcotest.(check int) "no events" 0 (Trace.num_events ());
  Alcotest.(check int) "counter untouched" before (Counters.value c)

(* --- counters --- *)

let test_counter_basics () =
  let c = Counters.counter "test.basic.counter" in
  let g = Counters.gauge "test.basic.gauge" in
  Counters.incr c;
  Counters.add c 4;
  Counters.set g 9;
  Counters.set_max g 3;
  Counters.set_max g 12;
  Alcotest.(check int) "counter" 5 (Counters.value c);
  Alcotest.(check int) "gauge peak" 12 (Counters.value g);
  Alcotest.check_raises "negative add"
    (Invalid_argument "Counters.add: negative increment") (fun () ->
      Counters.add c (-1));
  Alcotest.check_raises "kind clash"
    (Invalid_argument
       "Counters: \"test.basic.counter\" already registered with another kind")
    (fun () -> ignore (Counters.gauge "test.basic.counter"));
  Alcotest.check_raises "incr on gauge"
    (Invalid_argument "Counters.incr: not a counter") (fun () ->
      Counters.incr g);
  Alcotest.check_raises "set on counter"
    (Invalid_argument "Counters.set: not a gauge") (fun () ->
      Counters.set c 1)

let prop_counter_monotone =
  QCheck2.Test.make ~name:"counters are monotonically non-decreasing"
    ~count:100
    QCheck2.Gen.(list (oneof [ return `Incr; map (fun n -> `Add n) (0 -- 50) ]))
    (fun ops ->
      Counters.set_enabled true;
      let c = Counters.counter "test.prop.counter" in
      let start = Counters.value c in
      let expected = ref start in
      List.for_all
        (fun op ->
          let before = Counters.value c in
          (match op with
          | `Incr ->
            Counters.incr c;
            incr expected
          | `Add n ->
            Counters.add c n;
            expected := !expected + n);
          let v = Counters.value c in
          v >= before && v = !expected)
        ops)

let test_counters_all_sorted () =
  ignore (Counters.counter "test.sorted.b");
  ignore (Counters.counter "test.sorted.a");
  let names = List.map (fun (n, _, _) -> n) (Counters.all ()) in
  Alcotest.(check (list string))
    "sorted" (List.sort compare names) names

(* --- a minimal JSON parser, enough to load a Chrome trace --- *)

type json =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of json list
  | Obj of (string * json) list

exception Bad_json of string

let parse_json (s : string) : json =
  let n = String.length s in
  let pos = ref 0 in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let fail m = raise (Bad_json (Printf.sprintf "%s at %d" m !pos)) in
  let skip_ws () =
    while
      !pos < n && (match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false)
    do
      incr pos
    done
  in
  let expect c =
    if peek () = Some c then incr pos else fail (Printf.sprintf "expected %c" c)
  in
  let literal word v =
    if !pos + String.length word <= n && String.sub s !pos (String.length word) = word
    then begin
      pos := !pos + String.length word;
      v
    end
    else fail ("expected " ^ word)
  in
  let string_body () =
    expect '"';
    let b = Buffer.create 16 in
    let rec go () =
      if !pos >= n then fail "unterminated string"
      else
        match s.[!pos] with
        | '"' -> incr pos
        | '\\' ->
          incr pos;
          (match peek () with
          | Some '"' -> Buffer.add_char b '"'; incr pos
          | Some '\\' -> Buffer.add_char b '\\'; incr pos
          | Some '/' -> Buffer.add_char b '/'; incr pos
          | Some 'n' -> Buffer.add_char b '\n'; incr pos
          | Some 't' -> Buffer.add_char b '\t'; incr pos
          | Some 'r' -> Buffer.add_char b '\r'; incr pos
          | Some 'b' -> Buffer.add_char b '\b'; incr pos
          | Some 'f' -> Buffer.add_char b '\012'; incr pos
          | Some 'u' ->
            (* Keep the escape verbatim; exact code points don't matter
               for well-formedness. *)
            if !pos + 4 >= n then fail "bad \\u escape";
            Buffer.add_string b (String.sub s (!pos - 1) 6);
            pos := !pos + 5
          | _ -> fail "bad escape");
          go ()
        | c ->
          Buffer.add_char b c;
          incr pos;
          go ()
    in
    go ();
    Buffer.contents b
  in
  let number () =
    let start = !pos in
    while
      !pos < n
      && (match s.[!pos] with
         | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
         | _ -> false)
    do
      incr pos
    done;
    match float_of_string_opt (String.sub s start (!pos - start)) with
    | Some f -> Num f
    | None -> fail "bad number"
  in
  let rec value () =
    skip_ws ();
    match peek () with
    | Some '{' ->
      incr pos;
      skip_ws ();
      if peek () = Some '}' then begin
        incr pos;
        Obj []
      end
      else begin
        let rec members acc =
          skip_ws ();
          let key = string_body () in
          skip_ws ();
          expect ':';
          let v = value () in
          skip_ws ();
          match peek () with
          | Some ',' ->
            incr pos;
            members ((key, v) :: acc)
          | Some '}' ->
            incr pos;
            Obj (List.rev ((key, v) :: acc))
          | _ -> fail "expected , or }"
        in
        members []
      end
    | Some '[' ->
      incr pos;
      skip_ws ();
      if peek () = Some ']' then begin
        incr pos;
        Arr []
      end
      else begin
        let rec elements acc =
          let v = value () in
          skip_ws ();
          match peek () with
          | Some ',' ->
            incr pos;
            elements (v :: acc)
          | Some ']' ->
            incr pos;
            Arr (List.rev (v :: acc))
          | _ -> fail "expected , or ]"
        in
        elements []
      end
    | Some '"' -> Str (string_body ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some _ -> number ()
    | None -> fail "unexpected end"
  in
  let v = value () in
  skip_ws ();
  if !pos <> n then fail "trailing garbage";
  v

let member k = function
  | Obj fields -> List.assoc_opt k fields
  | _ -> None

(* --- export --- *)

let record_sample_spans () =
  Trace.with_span ~cat:"t" "parent" (fun () ->
      advance 0.5;
      Trace.with_span ~cat:"t" ~args:[ ("k", "v\"quoted\"") ] "child"
        (fun () -> advance 0.25));
  let c = Counters.counter "test.export.counter" in
  Counters.add c 42

let test_chrome_json_loads () =
  record_sample_spans ();
  let doc = parse_json (Trace_export.chrome_json ()) in
  let events =
    match member "traceEvents" doc with
    | Some (Arr evs) -> evs
    | _ -> Alcotest.fail "traceEvents missing"
  in
  Alcotest.(check int) "one event per span" (Trace.num_events ())
    (List.length events);
  List.iter
    (fun e ->
      Alcotest.(check (option string))
        "complete event" (Some "X")
        (match member "ph" e with Some (Str s) -> Some s | _ -> None);
      let has k = member k e <> None in
      Alcotest.(check bool) "required keys" true
        (has "name" && has "ts" && has "dur" && has "pid" && has "tid"))
    events;
  (match member "counters" doc with
  | Some (Obj fields) ->
    Alcotest.(check bool) "counter exported" true
      (match List.assoc_opt "test.export.counter" fields with
      | Some (Num 42.0) -> true
      | _ -> false)
  | _ -> Alcotest.fail "counters missing");
  (* Timestamps are microseconds relative to the epoch: the child span
     started 0.5 s in. *)
  let child =
    List.find
      (fun e -> member "name" e = Some (Str "child"))
      events
  in
  Alcotest.(check bool) "relative microseconds" true
    (match (member "ts" child, member "dur" child) with
    | Some (Num ts), Some (Num dur) -> ts = 500_000.0 && dur = 250_000.0
    | _ -> false)

let test_write_chrome_roundtrip () =
  record_sample_spans ();
  let path = Filename.temp_file "pdw_trace" ".json" in
  Fun.protect
    (fun () ->
      Trace_export.write_chrome path;
      let text = In_channel.with_open_text path In_channel.input_all in
      match parse_json (String.trim text) with
      | Obj _ -> ()
      | _ -> Alcotest.fail "expected a JSON object")
    ~finally:(fun () -> Sys.remove path)

let test_summary_renders () =
  record_sample_spans ();
  let b = Buffer.create 256 in
  let ppf = Format.formatter_of_buffer b in
  Trace_export.summary ppf;
  Format.pp_print_flush ppf ();
  let text = Buffer.contents b in
  let contains needle =
    let nl = String.length needle and tl = String.length text in
    let rec at i = i + nl <= tl && (String.sub text i nl = needle || at (i + 1)) in
    at 0
  in
  let mentions needle =
    Alcotest.(check bool) (needle ^ " in summary") true (contains needle)
  in
  mentions "parent";
  mentions "child";
  mentions "test.export.counter"

(* --- counter snapshots --- *)

let test_counter_snapshot_delta () =
  let c = Counters.counter "test.snap.counter" in
  let g = Counters.gauge "test.snap.gauge" in
  Counters.add c 3;
  Counters.set g 5;
  let snap = Counters.snapshot () in
  let d0 = Counters.delta ~since:snap in
  Alcotest.(check bool) "unmoved counter filtered" true
    (not (List.exists (fun (n, _, _) -> n = "test.snap.counter") d0));
  Alcotest.(check bool) "gauge reports its level" true
    (List.exists (fun (n, _, v) -> n = "test.snap.gauge" && v = 5) d0);
  Counters.add c 4;
  Counters.set_max g 9;
  let d = Counters.delta ~since:snap in
  Alcotest.(check bool) "counter reports the increase" true
    (List.exists (fun (n, _, v) -> n = "test.snap.counter" && v = 4) d);
  Alcotest.(check bool) "gauge reports the new level" true
    (List.exists (fun (n, _, v) -> n = "test.snap.gauge" && v = 9) d)

(* --- the shared JSON value --- *)

let test_json_roundtrip () =
  let v =
    Json.Obj
      [
        ("i", Json.Int 42);
        ("f", Json.Float 0.1);
        ("whole", Json.Float 3.0);
        ("s", Json.Str "a \"quoted\"\nline");
        ("b", Json.Bool false);
        ("z", Json.Null);
        ("a", Json.Arr [ Json.Int (-1); Json.Float 1e-9 ]);
        ("empty", Json.Obj []);
      ]
  in
  match Json.parse (Json.to_string v) with
  | Ok v' -> Alcotest.(check bool) "round-trips" true (v = v')
  | Error m -> Alcotest.failf "parse: %s" m

(* Control characters (U+0000–U+001F) must leave [Json_export.to_string]
   as \uXXXX escapes and come back intact through the shared parser —
   the service wire protocol ships outcome JSON in exactly this way. *)
let test_json_export_control_chars () =
  let module J = Pdw_wash.Json_export in
  let s = String.init 0x20 Char.chr in
  let printed = J.to_string (J.Obj [ ("s", J.String s) ]) in
  String.iter
    (fun c ->
      Alcotest.(check bool) "no raw control byte in output" true
        (Char.code c >= 0x20))
    printed;
  match Json.parse printed with
  | Ok (Json.Obj [ ("s", Json.Str s') ]) ->
    Alcotest.(check string) "all 32 control characters survive" s s'
  | Ok _ -> Alcotest.fail "unexpected shape"
  | Error m -> Alcotest.failf "parse: %s" m

(* The wire-protocol property: any value printed by [Json_export] parses
   back to the same value with [Pdw_obs.Json.parse].  Floats exercise
   the shortest-round-trip printer; strings exercise escaping. *)
let json_gen : Pdw_obs.Json.t QCheck2.Gen.t =
  let open QCheck2.Gen in
  let finite_float =
    map
      (fun f -> if Float.is_nan f || Float.abs f = Float.infinity then 0.5 else f)
      float
  in
  let scalar =
    oneof
      [
        return Json.Null;
        map (fun b -> Json.Bool b) bool;
        map (fun i -> Json.Int i) small_signed_int;
        map (fun f -> Json.Float f) finite_float;
        map (fun s -> Json.Str s) (string_size ~gen:char (0 -- 12));
      ]
  in
  sized @@ fix (fun self n ->
      if n <= 0 then scalar
      else
        frequency
          [
            (3, scalar);
            (1, map (fun l -> Json.Arr l) (list_size (0 -- 4) (self (n / 2))));
            ( 1,
              map
                (fun kvs -> Json.Obj kvs)
                (list_size (0 -- 4)
                   (pair (string_size ~gen:printable (0 -- 8)) (self (n / 2))))
            );
          ])

let prop_json_export_roundtrip =
  QCheck2.Test.make
    ~name:"Pdw_obs.Json.parse (Json_export.to_string j) = j" ~count:500
    json_gen
    (fun j ->
      let module J = Pdw_wash.Json_export in
      match Json.parse (J.to_string (J.of_obs j)) with
      | Ok j' -> j' = j
      | Error _ -> false)

(* --- the decision ledger --- *)

let run_planner_with_events () =
  Events.reset ();
  Events.set_enabled true;
  let layout = Pdw_biochip.Layout_builder.fig2_layout () in
  let s =
    Pdw_synth.Synthesis.synthesize ~layout
      (Pdw_assay.Benchmarks.motivating ())
  in
  ignore (Pdw_wash.Pdw.optimize s);
  Events.set_enabled false;
  Events.events ()

let test_events_jsonl_well_formed () =
  let events = run_planner_with_events () in
  Alcotest.(check bool) "ledger non-empty" true (events <> []);
  let path = Filename.temp_file "pdw_events" ".jsonl" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Events.write_jsonl path;
      let lines =
        In_channel.with_open_text path In_channel.input_all
        |> String.split_on_char '\n'
        |> List.filter (fun l -> String.trim l <> "")
      in
      Alcotest.(check int) "one line per event" (List.length events)
        (List.length lines);
      List.iteri
        (fun i line ->
          match parse_json line with
          | Obj fields ->
            Alcotest.(check bool)
              (Printf.sprintf "line %d seq" i)
              true
              (List.assoc_opt "seq" fields = Some (Num (float_of_int i)));
            Alcotest.(check bool)
              (Printf.sprintf "line %d type" i)
              true
              (match List.assoc_opt "type" fields with
              | Some (Str _) -> true
              | _ -> false)
          | _ -> Alcotest.failf "line %d is not a JSON object" i)
        lines;
      match Events.load_jsonl path with
      | Ok loaded ->
        Alcotest.(check bool) "ledger round-trips" true (loaded = events)
      | Error m -> Alcotest.failf "load_jsonl: %s" m)

let test_event_line_roundtrip () =
  let samples =
    [
      Events.Necessity_verdict
        {
          round = 2;
          cell = (3, 4);
          residue = "r1";
          deposited_at = 7;
          source = "task#3";
          verdict = "needed";
          rule = "sensitive-incompatible-flow";
          next_use = Some "op5";
          next_start = Some 12;
          next_fluid = Some "filtered(r1)";
          parked = false;
        };
      Events.Necessity_verdict
        {
          round = 0;
          cell = (0, 0);
          residue = "s \"quoted\"";
          deposited_at = 0;
          source = "task#0";
          verdict = "type1:unused";
          rule = "no-later-use";
          next_use = None;
          next_start = None;
          next_fluid = None;
          parked = true;
        };
      Events.Merge_accept
        {
          round = 1;
          removal_task = 9;
          group = 2;
          base_len = 6;
          enlarged_len = 8;
          budget = 9;
          window = (4, 11);
          spans_hold = true;
        };
      Events.Merge_reject
        {
          round = 1;
          removal_task = 5;
          reason = "no-overlapping-window";
          removal_window = Some (1, 2);
          group = Some 0;
          blocking_window = Some (2, 5);
        };
      Events.Merge_reject
        {
          round = 3;
          removal_task = 6;
          reason = "no-covering-path";
          removal_window = None;
          group = None;
          blocking_window = None;
        };
      Events.Wash_path
        {
          round = 1;
          wash_task = 19;
          group = 0;
          targets = [ (2, 2); (3, 2) ];
          window = (2, 5);
          finder = "heuristic";
          flow_port = 0;
          waste_port = 5;
          flow_candidates = 4;
          waste_candidates = 4;
          length = 6;
          merged_removals = [ 7; 8 ];
          contaminators = [ "task#1" ];
          use_keys = [ "task#2"; "op1" ];
        };
      Events.Storage_hold
        {
          round = 0;
          park_task = 11;
          cell = (5, 1);
          fluid = "mix(r1,r2)";
          hold_start = 14;
          hold_until = 31;
        };
      Events.Reschedule_shift
        { round = 2; key = "op3"; from_start = 10; to_start = 14 };
      Events.Ilp_incumbent { objective = -12.5; nodes_expanded = 431 };
    ]
  in
  List.iteri
    (fun i e ->
      let line = Events.to_line ~seq:i e in
      match Events.of_line line with
      | Ok (seq, e') ->
        Alcotest.(check int) "seq round-trips" i seq;
        Alcotest.(check bool)
          (Printf.sprintf "event %d round-trips" i)
          true (e = e')
      | Error m -> Alcotest.failf "of_line (event %d): %s" i m)
    samples

(* --- latency histograms --- *)

let hist_of values =
  let h = Histogram.create () in
  List.iter (Histogram.record h) values;
  h

(* Two histograms agree iff their non-empty buckets, totals and
   (fixed-point, hence exactly comparable) sums all match. *)
let hist_equal a b =
  Histogram.buckets a = Histogram.buckets b
  && Histogram.count a = Histogram.count b
  && Histogram.sum a = Histogram.sum b

let test_histogram_create_validation () =
  let expect_invalid what f =
    match f () with
    | exception Invalid_argument _ -> ()
    | _ -> Alcotest.failf "create accepted %s" what
  in
  expect_invalid "lo = 0" (fun () -> Histogram.create ~lo:0.0 ());
  expect_invalid "lo > hi" (fun () -> Histogram.create ~lo:10.0 ~hi:1.0 ());
  expect_invalid "rel_err = 0" (fun () -> Histogram.create ~rel_err:0.0 ());
  expect_invalid "rel_err = 1" (fun () -> Histogram.create ~rel_err:1.0 ())

let test_histogram_empty () =
  let h = Histogram.create () in
  Alcotest.(check int) "count" 0 (Histogram.count h);
  Alcotest.(check (float 0.)) "sum" 0.0 (Histogram.sum h);
  Alcotest.(check (float 0.)) "mean" 0.0 (Histogram.mean h);
  Alcotest.(check (float 0.)) "quantile" 0.0 (Histogram.quantile h 0.5);
  Alcotest.(check bool) "no buckets" true (Histogram.buckets h = []);
  match Histogram.cumulative h with
  | [ (bound, 0) ] -> Alcotest.(check (float 0.)) "+Inf entry" infinity bound
  | _ -> Alcotest.fail "empty cumulative should be the +Inf entry alone"

let test_histogram_edges () =
  let h = Histogram.create () in
  Histogram.record h Float.nan;
  Histogram.record h (-5.0);
  Histogram.record h 0.0;
  Alcotest.(check int) "NaN, negative and zero all counted" 3
    (Histogram.count h);
  let cfg = Histogram.config h in
  Alcotest.(check (float 1e-12)) "underflow reports lo" cfg.Histogram.lo
    (Histogram.quantile h 0.99);
  Histogram.record h 1e12 (* far past hi *);
  (match List.rev (Histogram.buckets h) with
  | (bound, 1) :: _ ->
    Alcotest.(check (float 0.)) "overflow bucket is open-ended" infinity bound
  | _ -> Alcotest.fail "overflow bucket missing");
  Alcotest.(check bool) "overflow quantile reports the finite top bound" true
    (Float.is_finite (Histogram.quantile h 1.0))

let test_histogram_mean_sum () =
  let h = hist_of [ 2.0; 4.0; 6.0 ] in
  (* The sum is fixed point in units of 2^-20: exact to ~1e-6 here. *)
  Alcotest.(check (float 1e-4)) "sum" 12.0 (Histogram.sum h);
  Alcotest.(check (float 1e-4)) "mean" 4.0 (Histogram.mean h)

let test_histogram_config_mismatch () =
  let a = Histogram.create () and b = Histogram.create ~rel_err:0.01 () in
  match Histogram.merge a b with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "merge accepted differing configs"

let test_histogram_cumulative () =
  let h = hist_of [ 0.5; 1.0; 2.0; 2.0; 40.0 ] in
  let cum = Histogram.cumulative h in
  let rec monotone = function
    | (b1, c1) :: ((b2, c2) :: _ as rest) ->
      b1 < b2 && c1 <= c2 && monotone rest
    | _ -> true
  in
  Alcotest.(check bool) "bounds and counts non-decreasing" true (monotone cum);
  match List.rev cum with
  | (bound, total) :: _ ->
    Alcotest.(check (float 0.)) "ends at +Inf" infinity bound;
    Alcotest.(check int) "+Inf counts everything" (Histogram.count h) total
  | [] -> Alcotest.fail "cumulative came back empty"

(* Values well inside [lo, hi] so the relative-error bound applies. *)
let hist_values_gen =
  QCheck2.Gen.(list_size (1 -- 200) (float_range 0.01 100_000.0))

(* The accuracy contract: the reported quantile is the representative
   of the bucket holding the sample the retired sorted-array code would
   have picked (rank ⌊q·(n-1)+0.5⌋), so it is within a factor 1+α of
   that exact sample. *)
let prop_histogram_quantile_oracle =
  QCheck2.Test.make
    ~name:"Histogram.quantile within rel_err of the sorted-array rank"
    ~count:300
    QCheck2.Gen.(pair hist_values_gen (float_range 0.0 1.0))
    (fun (values, q) ->
      let h = hist_of values in
      let arr = Array.of_list values in
      Array.sort compare arr;
      let n = Array.length arr in
      let rank =
        min (n - 1) (int_of_float ((q *. float_of_int (n - 1)) +. 0.5))
      in
      let exact = arr.(rank) in
      let est = Histogram.quantile h q in
      let rel_err = (Histogram.config h).Histogram.rel_err in
      est >= (exact /. (1.0 +. rel_err)) -. 1e-9
      && est <= (exact *. (1.0 +. rel_err)) +. 1e-9)

let prop_histogram_merge_commutes =
  QCheck2.Test.make ~name:"Histogram.merge commutes" ~count:100
    QCheck2.Gen.(pair hist_values_gen hist_values_gen)
    (fun (xs, ys) ->
      let a = hist_of xs and b = hist_of ys in
      hist_equal (Histogram.merge a b) (Histogram.merge b a))

let prop_histogram_merge_assoc =
  QCheck2.Test.make ~name:"Histogram.merge associates" ~count:100
    QCheck2.Gen.(triple hist_values_gen hist_values_gen hist_values_gen)
    (fun (xs, ys, zs) ->
      let a = hist_of xs and b = hist_of ys and c = hist_of zs in
      hist_equal
        (Histogram.merge (Histogram.merge a b) c)
        (Histogram.merge a (Histogram.merge b c)))

(* Interval snapshots rest on this: the histogram of [a]'s records is
   recoverable exactly from cumulative snapshots taken around them. *)
let prop_histogram_diff_inverts_merge =
  QCheck2.Test.make ~name:"Histogram.diff (merge a b) b = a" ~count:100
    QCheck2.Gen.(pair hist_values_gen hist_values_gen)
    (fun (xs, ys) ->
      let a = hist_of xs and b = hist_of ys in
      hist_equal (Histogram.diff (Histogram.merge a b) b) a)

(* --- the monotonic clock --- *)

let test_clock_monotone () =
  let prev = ref (Clock.now ()) in
  for _ = 1 to 10_000 do
    let t = Clock.now () in
    if t < !prev then Alcotest.fail "monotonic clock went backwards";
    prev := t
  done;
  let since = Clock.now_ms () in
  Alcotest.(check bool) "elapsed_ms non-negative" true
    (Clock.elapsed_ms ~since >= 0.0);
  Alcotest.(check bool) "now_ms is now in milliseconds" true
    (Float.abs ((Clock.now () *. 1000.0) -. Clock.now_ms ()) < 100.0)

(* --- request traces --- *)

let mk_record ?(stages = [ ("cache", 0.02); ("queue", 1.5) ]) ~outcome
    ~total_ms id =
  {
    Reqtrace.id;
    digest = Printf.sprintf "d%04x" id;
    shard = id mod 4;
    outcome;
    total_ms;
    stages;
  }

let test_reqtrace_roundtrip () =
  List.iteri
    (fun i outcome ->
      let r = mk_record ~outcome ~total_ms:(0.5 +. float_of_int i) i in
      match Reqtrace.of_line (Reqtrace.to_line r) with
      | Ok r' ->
        Alcotest.(check bool)
          (Printf.sprintf "outcome %s round-trips"
             (Reqtrace.outcome_to_string outcome))
          true (r = r')
      | Error m -> Alcotest.failf "of_line: %s" m)
    Reqtrace.[ Hit; Planned; Coalesced; Shed; Timeout; Failed ]

let test_reqtrace_ring () =
  let ring = Reqtrace.create_ring ~capacity:4 () in
  Alcotest.(check bool) "empty ring" true (Reqtrace.recent ring = []);
  for i = 1 to 10 do
    Reqtrace.note ring
      (mk_record ~outcome:Reqtrace.Planned ~total_ms:(float_of_int i) i)
  done;
  Alcotest.(check int) "seen counts every note" 10 (Reqtrace.seen ring);
  let ids = List.map (fun r -> r.Reqtrace.id) (Reqtrace.recent ring) in
  Alcotest.(check (list int)) "bounded, newest first" [ 10; 9; 8; 7 ] ids

(* The ledger's byte-inertness: disabled (the default), noting a slow
   request writes nothing anywhere; enabled, only records at or above
   the threshold land; disabling again stops the flow. *)
let test_reqtrace_slow_log_gating () =
  let ring = Reqtrace.create_ring () in
  let path = Filename.temp_file "pdw_slow" ".jsonl" in
  Fun.protect
    ~finally:(fun () ->
      Reqtrace.disable_slow_log ();
      if Sys.file_exists path then Sys.remove path)
    (fun () ->
      Alcotest.(check bool) "ledger off by default" false
        (Reqtrace.slow_log_enabled ());
      Reqtrace.note ring (mk_record ~outcome:Reqtrace.Planned ~total_ms:900.0 1);
      Alcotest.(check int) "disabled ledger writes nothing" 0
        (Unix.stat path).Unix.st_size;
      Reqtrace.set_slow_log ~threshold_ms:100.0 path;
      Alcotest.(check bool) "enabled" true (Reqtrace.slow_log_enabled ());
      Reqtrace.note ring (mk_record ~outcome:Reqtrace.Hit ~total_ms:5.0 2);
      Reqtrace.note ring (mk_record ~outcome:Reqtrace.Planned ~total_ms:250.0 3);
      Reqtrace.disable_slow_log ();
      Reqtrace.note ring (mk_record ~outcome:Reqtrace.Planned ~total_ms:999.0 4);
      let lines =
        In_channel.with_open_text path In_channel.input_all
        |> String.split_on_char '\n'
        |> List.filter (fun l -> l <> "")
      in
      match lines with
      | [ line ] -> (
        match Reqtrace.of_line line with
        | Ok r ->
          Alcotest.(check int) "only the slow request landed" 3 r.Reqtrace.id
        | Error m -> Alcotest.failf "ledger line unparseable: %s" m)
      | ls -> Alcotest.failf "expected 1 ledger line, got %d" (List.length ls))

(* --- regression: instrumentation never changes planner output --- *)

let planner_json () =
  let layout = Pdw_biochip.Layout_builder.fig2_layout () in
  let s =
    Pdw_synth.Synthesis.synthesize ~layout
      (Pdw_assay.Benchmarks.motivating ())
  in
  let pdw = Pdw_wash.Pdw.optimize s in
  let dawo = Pdw_wash.Dawo.optimize s in
  Pdw_wash.Json_export.to_string
    (Pdw_wash.Json_export.outcome pdw)
  ^ "\n"
  ^ Pdw_wash.Json_export.to_string (Pdw_wash.Json_export.outcome dawo)

let test_tracing_is_metrics_inert () =
  Trace.set_enabled false;
  Counters.set_enabled false;
  let plain = planner_json () in
  Trace.set_enabled true;
  Counters.set_enabled true;
  let traced = planner_json () in
  Alcotest.(check bool) "spans were recorded" true (Trace.num_events () > 0);
  Alcotest.(check string) "byte-identical planner output" plain traced

(* The ledger's side of the same guarantee: recording events (then
   discarding them) leaves the planner's JSON output byte-identical. *)
let test_events_are_metrics_inert () =
  Events.set_enabled false;
  Events.reset ();
  let plain = planner_json () in
  Events.set_enabled true;
  let recorded = planner_json () in
  Alcotest.(check bool) "events were recorded" true (Events.num_events () > 0);
  Events.set_enabled false;
  Events.reset ();
  Alcotest.(check string) "byte-identical planner output" plain recorded

(* --- the exposition parser and merger behind the fleet scrape --- *)

module Expo = Pdw_obs.Expo

let build_exposition ~count ~shard_count ~gauge ~values =
  let e = Expo.create () in
  Expo.counter e ~name:"t_requests_total" ~help:"requests"
    [ ([], count); ([ ("shard", "0") ], shard_count) ];
  Expo.gauge e ~name:"t_in_flight" ~help:"in flight" [ ([], gauge) ];
  let h = Histogram.create () in
  List.iter (Histogram.record h) values;
  Expo.histogram e ~name:"t_latency_ms" ~help:"latency" h;
  Expo.contents e

(* [parse] reads exactly the dialect the builder writes; [write] of the
   parsed families reproduces the text byte for byte. *)
let test_expo_parse_write_roundtrip () =
  let text =
    build_exposition ~count:3.0 ~shard_count:2.0 ~gauge:1.5
      ~values:[ 0.5; 3.0; 250.0 ]
  in
  match Expo.parse text with
  | Error m -> Alcotest.fail m
  | Ok fams ->
    Alcotest.(check int) "three families" 3 (List.length fams);
    (match fams with
    | [ c; g; h ] ->
      Alcotest.(check bool) "counter kind" true (c.Expo.fam_kind = Expo.Counter);
      Alcotest.(check bool) "gauge kind" true (g.Expo.fam_kind = Expo.Gauge);
      Alcotest.(check bool) "histogram kind" true
        (h.Expo.fam_kind = Expo.Histogram);
      Alcotest.(check int) "counter carries both samples" 2
        (List.length c.Expo.fam_samples)
    | _ -> Alcotest.fail "unexpected family split");
    let e2 = Expo.create () in
    Expo.write e2 fams;
    Alcotest.(check string) "write (parse text) = text" text
      (Expo.contents e2)

(* Merging two shard expositions sums samples with equal (name, labels)
   keys — and for histograms that is exactly [Histogram.merge] expressed
   on the text surface. *)
let test_expo_merge_sums () =
  let a_values = [ 0.5; 3.0 ] and b_values = [ 100.0; 3.0; 0.1 ] in
  let a =
    build_exposition ~count:3.0 ~shard_count:2.0 ~gauge:1.0 ~values:a_values
  in
  let b =
    build_exposition ~count:4.0 ~shard_count:1.0 ~gauge:0.5 ~values:b_values
  in
  let parse text =
    match Expo.parse text with
    | Ok fams -> fams
    | Error m -> Alcotest.fail m
  in
  let merged = Expo.merge [ parse a; parse b ] in
  let sample fam_name sample_name labels =
    match List.find_opt (fun f -> f.Expo.fam_name = fam_name) merged with
    | None -> Alcotest.failf "missing merged family %s" fam_name
    | Some f -> (
      match
        List.find_opt
          (fun s ->
            s.Expo.sample_name = sample_name && s.Expo.labels = labels)
          f.Expo.fam_samples
      with
      | Some s -> s.Expo.value
      | None -> Alcotest.failf "missing merged sample %s" sample_name)
  in
  Alcotest.(check (float 0.)) "unlabelled counters sum" 7.0
    (sample "t_requests_total" "t_requests_total" []);
  Alcotest.(check (float 0.)) "labelled counters sum per label set" 3.0
    (sample "t_requests_total" "t_requests_total" [ ("shard", "0") ]);
  Alcotest.(check (float 0.)) "gauges sum to the fleet total" 1.5
    (sample "t_in_flight" "t_in_flight" []);
  Alcotest.(check (float 0.)) "histogram counts sum" 5.0
    (sample "t_latency_ms" "t_latency_ms_count" []);
  (* The text-surface merge agrees with the histogram-level merge on
     every bucket line, [+Inf] included. *)
  let ha = Histogram.create () and hb = Histogram.create () in
  List.iter (Histogram.record ha) a_values;
  List.iter (Histogram.record hb) b_values;
  let oracle = Histogram.merge ha hb in
  List.iter
    (fun (le, n) ->
      let le_label = Expo.number le in
      Alcotest.(check (float 0.))
        (Printf.sprintf "bucket le=%s matches Histogram.merge" le_label)
        (float_of_int n)
        (sample "t_latency_ms" "t_latency_ms_bucket" [ ("le", le_label) ]))
    (Histogram.cumulative oracle);
  Alcotest.(check (float 0.)) "histogram sums add" (Histogram.sum oracle)
    (sample "t_latency_ms" "t_latency_ms_sum" [])

let test_expo_parse_rejects_garbage () =
  List.iter
    (fun text ->
      match Expo.parse text with
      | Error _ -> ()
      | Ok _ -> Alcotest.failf "accepted malformed exposition %S" text)
    [
      "t_total{le=\"0.5\" 3\n";
      (* unclosed label set *)
      "t_total notanumber\n";
      "t_total{le=\"0.5}\n";
      (* unterminated label value *)
    ]

let () =
  Alcotest.run "pdw_obs"
    [
      ( "trace",
        [
          Alcotest.test_case "nesting" `Quick (with_obs test_span_nesting);
          Alcotest.test_case "exception safety" `Quick
            (with_obs test_span_exception_safety);
          Alcotest.test_case "args" `Quick (with_obs test_span_args);
          Alcotest.test_case "disabled is a no-op" `Quick
            (with_obs test_disabled_records_nothing);
        ] );
      ( "counters",
        [
          Alcotest.test_case "basics" `Quick (with_obs test_counter_basics);
          Alcotest.test_case "all sorted" `Quick
            (with_obs test_counters_all_sorted);
          Alcotest.test_case "snapshot delta" `Quick
            (with_obs test_counter_snapshot_delta);
          QCheck_alcotest.to_alcotest prop_counter_monotone;
        ] );
      ( "events",
        [
          Alcotest.test_case "json value round-trips" `Quick
            (with_obs test_json_roundtrip);
          Alcotest.test_case "json export escapes control characters" `Quick
            (with_obs test_json_export_control_chars);
          QCheck_alcotest.to_alcotest prop_json_export_roundtrip;
          Alcotest.test_case "jsonl well-formed and round-trips" `Quick
            (with_obs test_events_jsonl_well_formed);
          Alcotest.test_case "every constructor round-trips" `Quick
            (with_obs test_event_line_roundtrip);
        ] );
      ( "export",
        [
          Alcotest.test_case "chrome json loads" `Quick
            (with_obs test_chrome_json_loads);
          Alcotest.test_case "write_chrome round-trips" `Quick
            (with_obs test_write_chrome_roundtrip);
          Alcotest.test_case "summary renders" `Quick
            (with_obs test_summary_renders);
        ] );
      ( "histogram",
        [
          Alcotest.test_case "create validates its config" `Quick
            test_histogram_create_validation;
          Alcotest.test_case "empty histogram" `Quick test_histogram_empty;
          Alcotest.test_case "underflow and overflow" `Quick
            test_histogram_edges;
          Alcotest.test_case "sum and mean" `Quick test_histogram_mean_sum;
          Alcotest.test_case "merge rejects differing configs" `Quick
            test_histogram_config_mismatch;
          Alcotest.test_case "cumulative form" `Quick test_histogram_cumulative;
          QCheck_alcotest.to_alcotest prop_histogram_quantile_oracle;
          QCheck_alcotest.to_alcotest prop_histogram_merge_commutes;
          QCheck_alcotest.to_alcotest prop_histogram_merge_assoc;
          QCheck_alcotest.to_alcotest prop_histogram_diff_inverts_merge;
        ] );
      ( "expo",
        [
          Alcotest.test_case "parse/write round-trip" `Quick
            test_expo_parse_write_roundtrip;
          Alcotest.test_case "merge sums counters, gauges, buckets" `Quick
            test_expo_merge_sums;
          Alcotest.test_case "malformed expositions rejected" `Quick
            test_expo_parse_rejects_garbage;
        ] );
      ( "clock",
        [ Alcotest.test_case "monotone" `Quick test_clock_monotone ] );
      ( "reqtrace",
        [
          Alcotest.test_case "every outcome round-trips" `Quick
            test_reqtrace_roundtrip;
          Alcotest.test_case "bounded ring, newest first" `Quick
            test_reqtrace_ring;
          Alcotest.test_case "slow-request ledger gating" `Quick
            test_reqtrace_slow_log_gating;
        ] );
      ( "regression",
        [
          Alcotest.test_case "tracing never changes metrics" `Quick
            (with_obs test_tracing_is_metrics_inert);
          Alcotest.test_case "the ledger never changes metrics" `Quick
            (with_obs test_events_are_metrics_inert);
        ] );
    ]
