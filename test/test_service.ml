(* Tests for the planning service: wire framing, protocol codecs and
   digests, the LRU plan cache, admission control, and the daemon
   end-to-end over a real Unix socket — cache hits, coalescing,
   byte-identity with one-shot runs, explicit shedding under load, and
   per-request timeouts. *)

module Wire = Pdw_service.Wire
module Protocol = Pdw_service.Protocol
module Plan_cache = Pdw_service.Plan_cache
module Admission = Pdw_service.Admission
module Engine = Pdw_service.Engine
module Server = Pdw_service.Server
module Client = Pdw_service.Client
module Loadgen = Pdw_service.Loadgen
module Json = Pdw_obs.Json
module Pdw = Pdw_wash.Pdw

let contains ~needle hay =
  let n = String.length needle and h = String.length hay in
  let rec at i = i + n <= h && (String.sub hay i n = needle || at (i + 1)) in
  n = 0 || at 0

(* --- wire framing --- *)

let with_pipe f =
  let r, w = Unix.pipe () in
  Fun.protect
    ~finally:(fun () ->
      (try Unix.close r with Unix.Unix_error _ -> ());
      try Unix.close w with Unix.Unix_error _ -> ())
    (fun () -> f r w)

(* Write from a separate thread: payloads larger than the pipe buffer
   would otherwise deadlock a single-threaded write-then-read. *)
let frame_roundtrip payload =
  with_pipe @@ fun r w ->
  let writer = Thread.create (fun () -> Wire.write_frame w payload) () in
  let got = Wire.read_frame r in
  Thread.join writer;
  match got with
  | Some got -> Alcotest.(check string) "frame round-trips" payload got
  | None -> Alcotest.fail "unexpected end of stream"

let test_wire_roundtrip () =
  frame_roundtrip "";
  frame_roundtrip "{\"op\":\"ping\"}";
  (* Every byte value, control characters included: framing is
     byte-count-based, so nothing in the payload can confuse it. *)
  frame_roundtrip (String.init 256 Char.chr);
  frame_roundtrip (String.make (1 lsl 20) 'x')

let test_wire_eof () =
  with_pipe @@ fun r w ->
  Unix.close w;
  Alcotest.(check bool) "clean EOF is None" true (Wire.read_frame r = None)

let test_wire_bad_header () =
  let expect_protocol_error raw =
    with_pipe @@ fun r w ->
    ignore (Unix.write_substring w raw 0 (String.length raw));
    Unix.close w;
    match Wire.read_frame r with
    | exception Wire.Protocol_error _ -> ()
    | _ -> Alcotest.fail (Printf.sprintf "accepted bad header %S" raw)
  in
  expect_protocol_error "12x\npayload";
  expect_protocol_error "\n";
  expect_protocol_error "999999999999\n";
  (* Truncated payload: header promises more bytes than the stream has. *)
  expect_protocol_error "10\nabc"

(* --- protocol codecs and digests --- *)

let spec_of ?method_ ?config name = Protocol.spec ?method_ ?config (Protocol.Benchmark name)

let test_protocol_request_roundtrip () =
  let reqs =
    [
      Protocol.Submit { spec = spec_of "pcr"; no_cache = false };
      Protocol.Submit
        {
          spec =
            Protocol.spec ~method_:`Dawo
              ~config:{ Pdw.default_config with Pdw.dissolution = 3 }
              (Protocol.Inline "assay text\nwith lines");
          no_cache = true;
        };
      Protocol.Burn { ms = 42 };
      Protocol.Stats;
      Protocol.Version;
      Protocol.Ping;
      Protocol.Shutdown;
    ]
  in
  List.iter
    (fun req ->
      match Protocol.request_of_json (Protocol.request_to_json req) with
      | Ok got ->
        Alcotest.(check bool) "request round-trips" true (got = req)
      | Error m -> Alcotest.fail m)
    reqs

let test_protocol_digest () =
  let d = Protocol.digest in
  Alcotest.(check string) "benchmark name is case-insensitive"
    (d (spec_of "PCR")) (d (spec_of "pcr"));
  Alcotest.(check bool) "different benchmarks differ" true
    (d (spec_of "pcr") <> d (spec_of "ivd"));
  Alcotest.(check bool) "method changes the digest" true
    (d (spec_of "pcr") <> d (spec_of ~method_:`Dawo "pcr"));
  Alcotest.(check bool) "config changes the digest" true
    (d (spec_of "pcr")
    <> d (spec_of ~config:{ Pdw.default_config with Pdw.dissolution = 3 } "pcr"))

let test_protocol_rejects_unknown_config () =
  let j =
    Json.Obj
      [
        ("op", Json.Str "submit");
        ("benchmark", Json.Str "pcr");
        ("config", Json.Obj [ ("disolution", Json.Int 3) ]);
      ]
  in
  match Protocol.request_of_json j with
  | Error m ->
    Alcotest.(check bool) "error names the field" true
      (contains ~needle:"disolution" m)
  | Ok _ -> Alcotest.fail "accepted a misspelled config field"

(* --- plan cache --- *)

let test_cache_lru () =
  let c = Plan_cache.create ~capacity:2 () in
  Plan_cache.add c "a" "A";
  Plan_cache.add c "b" "B";
  Alcotest.(check (option string)) "hit a" (Some "A") (Plan_cache.find c "a");
  (* [a] was just promoted, so inserting [c] evicts [b]. *)
  Plan_cache.add c "c" "C";
  Alcotest.(check (option string)) "b evicted" None (Plan_cache.find c "b");
  Alcotest.(check (option string)) "a survives" (Some "A") (Plan_cache.find c "a");
  Alcotest.(check (option string)) "c present" (Some "C") (Plan_cache.find c "c");
  let s = Plan_cache.stats c in
  Alcotest.(check int) "one eviction" 1 s.Plan_cache.evictions;
  Alcotest.(check int) "length" 2 s.Plan_cache.length;
  Alcotest.(check int) "misses" 1 s.Plan_cache.misses;
  Alcotest.(check int) "hits" 3 s.Plan_cache.hits

let test_cache_refresh () =
  let c = Plan_cache.create ~capacity:2 () in
  Plan_cache.add c "a" "A";
  Plan_cache.add c "a" "A2";
  Alcotest.(check (option string)) "refreshed value" (Some "A2")
    (Plan_cache.find c "a");
  Alcotest.(check int) "no growth" 1 (Plan_cache.stats c).Plan_cache.length

(* --- admission control --- *)

let test_admission () =
  let a = Admission.create ~limit:2 in
  Alcotest.(check bool) "slot 1" true (Admission.try_admit a);
  Alcotest.(check bool) "slot 2" true (Admission.try_admit a);
  Alcotest.(check bool) "slot 3 refused" false (Admission.try_admit a);
  Alcotest.(check int) "shed counted" 1 (Admission.shed_count a);
  Admission.release a;
  Alcotest.(check bool) "slot freed" true (Admission.try_admit a);
  Alcotest.(check int) "in flight" 2 (Admission.in_flight a)

(* --- the daemon, end to end --- *)

let fresh_socket () =
  let path = Filename.temp_file "pdw-svc" ".sock" in
  Sys.remove path;
  path

let with_server ?(workers = 2) ?(queue_limit = 4) ?(cache = 8)
    ?(timeout_ms = 30_000) f =
  let cfg =
    {
      Server.socket_path = fresh_socket ();
      workers;
      queue_limit;
      cache_capacity = cache;
      job_timeout_ms = timeout_ms;
      max_retries = 1;
    }
  in
  let srv = Server.start cfg in
  Fun.protect
    ~finally:(fun () -> Server.stop srv)
    (fun () -> f cfg.Server.socket_path srv)

(* [Plan]'s payload is an inline record, so destructure it here and hand
   back a plain tuple: (cached, coalesced, outcome). *)
let submit_ok c spec =
  match Client.request c (Protocol.Submit { spec; no_cache = false }) with
  | Ok (Protocol.Plan { cached; coalesced; outcome; _ }) ->
    (cached, coalesced, outcome)
  | Ok _ -> Alcotest.fail "expected a plan reply"
  | Error m -> Alcotest.fail m

let test_server_plan_and_cache () =
  with_server @@ fun path _srv ->
  let spec = spec_of "pcr" in
  let expected =
    match Engine.plan spec with Ok o -> o | Error m -> Alcotest.fail m
  in
  Client.with_client path @@ fun c ->
  let cached1, _, outcome1 = submit_ok c spec in
  Alcotest.(check bool) "first is computed" false cached1;
  Alcotest.(check string) "served plan = one-shot plan" expected outcome1;
  let cached2, _, outcome2 = submit_ok c spec in
  Alcotest.(check bool) "repeat is a cache hit" true cached2;
  Alcotest.(check string) "cached bytes identical" expected outcome2;
  (* Case-insensitive canonicalization: "PCR" hits the same entry. *)
  let cached3, _, _ = submit_ok c (spec_of "PCR") in
  Alcotest.(check bool) "canonicalized repeat hits" true cached3

let test_server_simple_ops () =
  with_server @@ fun path srv ->
  Client.with_client path @@ fun c ->
  (match Client.request c Protocol.Ping with
  | Ok Protocol.Pong -> ()
  | _ -> Alcotest.fail "ping");
  (match Client.request c Protocol.Version with
  | Ok (Protocol.Version_reply v) ->
    Alcotest.(check string) "version matches the library"
      Pdw_service.Version.version v
  | _ -> Alcotest.fail "version");
  (* The in-process [handle] answers identically to the socket path. *)
  (match Server.handle srv Protocol.Ping with
  | Protocol.Pong -> ()
  | _ -> Alcotest.fail "in-process ping");
  match Client.request c Protocol.Stats with
  | Ok (Protocol.Stats_reply j) ->
    let member_keys =
      [ "version"; "workers"; "queue"; "cache"; "requests"; "latency_ms" ]
    in
    List.iter
      (fun k ->
        Alcotest.(check bool) (Printf.sprintf "stats has %S" k) true
          (Json.member k j <> None))
      member_keys
  | _ -> Alcotest.fail "stats"

let test_server_bad_requests () =
  with_server @@ fun path _srv ->
  Client.with_client path @@ fun c ->
  (match Client.request c (Protocol.Submit { spec = spec_of "nope"; no_cache = false }) with
  | Ok (Protocol.Error m) ->
    Alcotest.(check bool) "names the benchmark" true (contains ~needle:"nope" m)
  | _ -> Alcotest.fail "expected an error reply");
  match
    Client.request c
      (Protocol.Submit
         { spec = Protocol.spec (Protocol.Inline "not an assay {"); no_cache = false })
  with
  | Ok (Protocol.Error _) -> ()
  | _ -> Alcotest.fail "expected a parse-error reply"

let test_server_shed () =
  (* One worker, two in-flight slots.  Two long burns fill the slots
     (one running, one queued); the third request must be refused with
     an explicit shed, not queued silently. *)
  with_server ~workers:1 ~queue_limit:2 @@ fun path _srv ->
  let burn () =
    Client.with_client path @@ fun c ->
    Client.request c (Protocol.Burn { ms = 500 })
  in
  let t1 = Thread.create burn () in
  let t2 = Thread.create burn () in
  Thread.delay 0.15;
  (Client.with_client path @@ fun c ->
   match Client.request c (Protocol.Burn { ms = 10 }) with
   | Ok (Protocol.Shed { in_flight; limit }) ->
     Alcotest.(check int) "limit reported" 2 limit;
     Alcotest.(check bool) "in_flight at limit" true (in_flight >= 2)
   | Ok r ->
     Alcotest.failf "expected shed, got %s"
       (Json.to_string (Protocol.reply_to_json r))
   | Error m -> Alcotest.fail m);
  List.iter Thread.join [ t1; t2 ]

let test_server_timeout () =
  (* One worker busy burning for 600 ms; a submit with a 150 ms budget
     must come back as an explicit timeout, not hang. *)
  with_server ~workers:1 ~queue_limit:4 ~timeout_ms:150 @@ fun path _srv ->
  let burner =
    Thread.create
      (fun () ->
        Client.with_client path @@ fun c ->
        Client.request c (Protocol.Burn { ms = 600 }))
      ()
  in
  Thread.delay 0.15;
  (Client.with_client path @@ fun c ->
   match Client.request c (Protocol.Submit { spec = spec_of "pcr"; no_cache = false }) with
   | Ok (Protocol.Timeout { after_ms }) ->
     Alcotest.(check int) "reports its budget" 150 after_ms
   | Ok r ->
     Alcotest.failf "expected timeout, got %s"
       (Json.to_string (Protocol.reply_to_json r))
   | Error m -> Alcotest.fail m);
  Thread.join burner

let test_server_loadgen () =
  with_server ~workers:2 ~queue_limit:64 @@ fun path _srv ->
  let specs = [ spec_of "pcr"; spec_of "ivd" ] in
  let s =
    Loadgen.run ~socket_path:path ~clients:8 ~per_client:3 ~verify:true specs
  in
  Alcotest.(check int) "all requests answered with plans" s.Loadgen.requests
    s.Loadgen.plans;
  Alcotest.(check int) "no shed at low load" 0 s.Loadgen.shed;
  Alcotest.(check int) "no mismatches" 0 s.Loadgen.mismatches;
  Alcotest.(check int) "no errors" 0 s.Loadgen.errors;
  Alcotest.(check bool) "duplicates were cached or coalesced" true
    (s.Loadgen.cached + s.Loadgen.coalesced > 0)

let test_server_shutdown_request () =
  let cfg =
    Server.default_config ~socket_path:(fresh_socket ())
  in
  let cfg = { cfg with Server.workers = 1 } in
  let srv = Server.start cfg in
  (Client.with_client cfg.Server.socket_path @@ fun c ->
   match Client.request c Protocol.Shutdown with
   | Ok Protocol.Bye -> ()
   | _ -> Alcotest.fail "expected bye");
  Server.wait srv;
  Alcotest.(check bool) "socket file removed" false
    (Sys.file_exists cfg.Server.socket_path)

let () =
  Alcotest.run "pdw_service"
    [
      ( "wire",
        [
          Alcotest.test_case "frame round-trips" `Quick test_wire_roundtrip;
          Alcotest.test_case "clean EOF" `Quick test_wire_eof;
          Alcotest.test_case "malformed frames" `Quick test_wire_bad_header;
        ] );
      ( "protocol",
        [
          Alcotest.test_case "request round-trips" `Quick
            test_protocol_request_roundtrip;
          Alcotest.test_case "digest canonicalization" `Quick
            test_protocol_digest;
          Alcotest.test_case "unknown config field" `Quick
            test_protocol_rejects_unknown_config;
        ] );
      ( "plan cache",
        [
          Alcotest.test_case "LRU eviction and promotion" `Quick test_cache_lru;
          Alcotest.test_case "refresh in place" `Quick test_cache_refresh;
        ] );
      ( "admission",
        [ Alcotest.test_case "bounded slots" `Quick test_admission ] );
      ( "daemon",
        [
          Alcotest.test_case "plan, cache, byte-identity" `Quick
            test_server_plan_and_cache;
          Alcotest.test_case "ping, version, stats" `Quick
            test_server_simple_ops;
          Alcotest.test_case "bad requests answered" `Quick
            test_server_bad_requests;
          Alcotest.test_case "explicit shed at the limit" `Quick
            test_server_shed;
          Alcotest.test_case "per-request timeout" `Quick test_server_timeout;
          Alcotest.test_case "concurrent loadgen, verified" `Slow
            test_server_loadgen;
          Alcotest.test_case "shutdown request" `Quick
            test_server_shutdown_request;
        ] );
    ]
