(* Tests for the planning service: wire framing, protocol codecs and
   digests, the LRU plan cache, admission control, and the daemon
   end-to-end over a real Unix socket — cache hits, coalescing,
   byte-identity with one-shot runs, explicit shedding under load, and
   per-request timeouts. *)

module Wire = Pdw_service.Wire
module Protocol = Pdw_service.Protocol
module Plan_cache = Pdw_service.Plan_cache
module Plan_store = Pdw_service.Plan_store
module Router = Pdw_service.Router
module Admission = Pdw_service.Admission
module Engine = Pdw_service.Engine
module Server = Pdw_service.Server
module Client = Pdw_service.Client
module Loadgen = Pdw_service.Loadgen
module Json = Pdw_obs.Json
module Pdw = Pdw_wash.Pdw

let contains ~needle hay =
  let n = String.length needle and h = String.length hay in
  let rec at i = i + n <= h && (String.sub hay i n = needle || at (i + 1)) in
  n = 0 || at 0

(* --- wire framing --- *)

let with_pipe f =
  let r, w = Unix.pipe () in
  Fun.protect
    ~finally:(fun () ->
      (try Unix.close r with Unix.Unix_error _ -> ());
      try Unix.close w with Unix.Unix_error _ -> ())
    (fun () -> f r w)

(* Write from a separate thread: payloads larger than the pipe buffer
   would otherwise deadlock a single-threaded write-then-read. *)
let frame_roundtrip payload =
  with_pipe @@ fun r w ->
  let writer = Thread.create (fun () -> Wire.write_frame w payload) () in
  let got = Wire.read_frame r in
  Thread.join writer;
  match got with
  | Some got -> Alcotest.(check string) "frame round-trips" payload got
  | None -> Alcotest.fail "unexpected end of stream"

let test_wire_roundtrip () =
  frame_roundtrip "";
  frame_roundtrip "{\"op\":\"ping\"}";
  (* Every byte value, control characters included: framing is
     byte-count-based, so nothing in the payload can confuse it. *)
  frame_roundtrip (String.init 256 Char.chr);
  frame_roundtrip (String.make (1 lsl 20) 'x')

let test_wire_eof () =
  with_pipe @@ fun r w ->
  Unix.close w;
  Alcotest.(check bool) "clean EOF is None" true (Wire.read_frame r = None)

let test_wire_bad_header () =
  let expect_protocol_error raw =
    with_pipe @@ fun r w ->
    ignore (Unix.write_substring w raw 0 (String.length raw));
    Unix.close w;
    match Wire.read_frame r with
    | exception Wire.Protocol_error _ -> ()
    | _ -> Alcotest.fail (Printf.sprintf "accepted bad header %S" raw)
  in
  expect_protocol_error "12x\npayload";
  expect_protocol_error "\n";
  expect_protocol_error "999999999999\n";
  (* Truncated payload: header promises more bytes than the stream has. *)
  expect_protocol_error "10\nabc"

(* Batched framing: many frames land in the writer's buffer, one flush
   moves them, and the buffered reader hands them all out of (at most)
   one refill.  A 1 KiB read buffer (the floor) forces payloads bigger
   than the buffer through the straight-from-fd spill path. *)
let test_wire_buffered_batch () =
  let payloads =
    [ ""; "{\"op\":\"ping\"}"; String.init 256 Char.chr; String.make 4096 'y' ]
  in
  with_pipe @@ fun r w ->
  let wr = Wire.Batch.create w in
  List.iter (Wire.Batch.add_frame wr) payloads;
  Alcotest.(check bool) "frames pending before flush" true
    (Wire.Batch.pending wr > 0);
  let writer =
    Thread.create
      (fun () ->
        Wire.Batch.flush wr;
        Unix.close w)
      ()
  in
  let rd = Wire.Buffered.create ~buf_size:1024 r in
  List.iteri
    (fun i expected ->
      match Wire.Buffered.read_frame rd with
      | Some got ->
        Alcotest.(check string) (Printf.sprintf "frame %d" i) expected got
      | None -> Alcotest.failf "eof before frame %d" i)
    payloads;
  Alcotest.(check bool) "clean EOF after the batch" true
    (Wire.Buffered.read_frame rd = None);
  Thread.join writer

(* [has_frame] looks only at bytes already buffered — it must say yes
   while complete frames wait, and no once the buffer is drained. *)
let test_wire_has_frame () =
  with_pipe @@ fun r w ->
  let wr = Wire.Batch.create w in
  Wire.Batch.add_frame wr "one";
  Wire.Batch.add_frame wr "two";
  Wire.Batch.flush wr;
  let rd = Wire.Buffered.create r in
  (match Wire.Buffered.read_frame rd with
  | Some got -> Alcotest.(check string) "first frame" "one" got
  | None -> Alcotest.fail "eof");
  Alcotest.(check bool) "second frame already buffered" true
    (Wire.Buffered.has_frame rd);
  (match Wire.Buffered.read_frame rd with
  | Some got -> Alcotest.(check string) "second frame" "two" got
  | None -> Alcotest.fail "eof");
  Alcotest.(check bool) "buffer drained" false (Wire.Buffered.has_frame rd);
  Unix.close w

(* --- protocol codecs and digests --- *)

let spec_of ?method_ ?config name = Protocol.spec ?method_ ?config (Protocol.Benchmark name)

let test_protocol_request_roundtrip () =
  let reqs =
    [
      Protocol.Submit { spec = spec_of "pcr"; no_cache = false };
      Protocol.Submit
        {
          spec =
            Protocol.spec ~method_:`Dawo
              ~config:{ Pdw.default_config with Pdw.dissolution = 3 }
              (Protocol.Inline "assay text\nwith lines");
          no_cache = true;
        };
      (* park already in canonical order: the wire form sorts and
         dedups, so only a canonical set round-trips structurally. *)
      Protocol.Submit
        { spec = Protocol.spec ~park:[ 1; 3 ] (Protocol.Benchmark "storageshuttle");
          no_cache = false };
      Protocol.Burn { ms = 42 };
      Protocol.Stats;
      Protocol.Version;
      Protocol.Ping;
      Protocol.Shutdown;
    ]
  in
  List.iter
    (fun req ->
      match Protocol.request_of_json (Protocol.request_to_json req) with
      | Ok got ->
        Alcotest.(check bool) "request round-trips" true (got = req)
      | Error m -> Alcotest.fail m)
    reqs

let test_protocol_digest () =
  let d = Protocol.digest in
  Alcotest.(check string) "benchmark name is case-insensitive"
    (d (spec_of "PCR")) (d (spec_of "pcr"));
  Alcotest.(check bool) "different benchmarks differ" true
    (d (spec_of "pcr") <> d (spec_of "ivd"));
  Alcotest.(check bool) "method changes the digest" true
    (d (spec_of "pcr") <> d (spec_of ~method_:`Dawo "pcr"));
  Alcotest.(check bool) "config changes the digest" true
    (d (spec_of "pcr")
    <> d (spec_of ~config:{ Pdw.default_config with Pdw.dissolution = 3 } "pcr"));
  (* The serve bench spreads its planner campaign across shards with
     tiny weight nudges; those variants must really get distinct
     digests (floats print in shortest round-trip form, so an epsilon
     always shows up in the canonical JSON). *)
  Alcotest.(check bool) "an alpha epsilon changes the digest" true
    (d (spec_of "pcr")
    <> d
         (spec_of
            ~config:
              { Pdw.default_config with
                Pdw.alpha = Pdw.default_config.Pdw.alpha +. 1e-9 }
            "pcr"))

(* The satellite guarantee of the storage subsystem: a storage spec and
   its storage-free projection are different planning problems and must
   never share a digest — a cached storage-blind plan answering a
   storage request (or vice versa) would serve the wrong chip. *)
let test_protocol_storage_digest () =
  let d = Protocol.digest in
  List.iter
    (fun name ->
      let stored = Protocol.spec ~park:[ 0 ] (Protocol.Benchmark name) in
      let plain = { stored with Protocol.park = [] } in
      Alcotest.(check bool)
        (name ^ ": storage spec never aliases its storage-free projection")
        true
        (d stored <> d plain))
    [ "pcr"; "storageshuttle"; "storageladder"; "storageburst" ];
  Alcotest.(check string) "park order and duplicates are canonicalized"
    (d (Protocol.spec ~park:[ 3; 1; 1 ] (Protocol.Benchmark "pcr")))
    (d (Protocol.spec ~park:[ 1; 3 ] (Protocol.Benchmark "pcr")));
  Alcotest.(check bool) "different park sets differ" true
    (d (Protocol.spec ~park:[ 1 ] (Protocol.Benchmark "pcr"))
    <> d (Protocol.spec ~park:[ 2 ] (Protocol.Benchmark "pcr")));
  (* The canonical form carries its own revision, so even an empty park
     set digests differently from any pre-storage build's form. *)
  match Protocol.canonical_json (spec_of "pcr") with
  | Json.Obj fields ->
    Alcotest.(check bool) "spec_rev stamped into the canonical form" true
      (List.assoc_opt "spec_rev" fields = Some (Json.Int Protocol.spec_rev));
    Alcotest.(check bool) "park field present even when empty" true
      (List.assoc_opt "park" fields = Some (Json.Arr []))
  | _ -> Alcotest.fail "canonical form is not an object"

let test_protocol_rejects_bad_park () =
  let submit park_json =
    Protocol.request_of_json
      (Json.Obj
         [
           ("op", Json.Str "submit");
           ("benchmark", Json.Str "pcr");
           ("park", park_json);
         ])
  in
  (match submit (Json.Str "2") with
  | Error m ->
    Alcotest.(check bool) "non-array park named" true
      (contains ~needle:"park" m)
  | Ok _ -> Alcotest.fail "accepted a non-array park");
  (match submit (Json.Arr [ Json.Str "two" ]) with
  | Error m ->
    Alcotest.(check bool) "non-int park element named" true
      (contains ~needle:"park" m)
  | Ok _ -> Alcotest.fail "accepted a non-int park element");
  match submit (Json.Arr [ Json.Int (-1) ]) with
  | Error m ->
    Alcotest.(check bool) "negative id named" true
      (contains ~needle:"park" m)
  | Ok _ -> Alcotest.fail "accepted a negative op id"

(* Parking through the engine: a parked spec plans successfully and its
   outcome differs from the storage-free plan of the same assay, while
   a bad op id comes back as a typed error, not a worker crash. *)
let test_engine_park () =
  let plain = spec_of "pcr" in
  let parked = Protocol.spec ~park:[ 0 ] (Protocol.Benchmark "pcr") in
  match (Engine.plan plain, Engine.plan parked) with
  | Ok a, Ok b ->
    Alcotest.(check bool) "parked plan differs from storage-free plan" true
      (not (String.equal a b));
    (match Engine.plan (Protocol.spec ~park:[ 999 ] (Protocol.Benchmark "pcr"))
     with
    | Error m ->
      Alcotest.(check bool) "bad op id is a typed error" true
        (contains ~needle:"park" m)
    | Ok _ -> Alcotest.fail "planned a park of a nonexistent op")
  | Error m, _ | _, Error m -> Alcotest.fail m

let test_protocol_rejects_unknown_config () =
  let j =
    Json.Obj
      [
        ("op", Json.Str "submit");
        ("benchmark", Json.Str "pcr");
        ("config", Json.Obj [ ("disolution", Json.Int 3) ]);
      ]
  in
  match Protocol.request_of_json j with
  | Error m ->
    Alcotest.(check bool) "error names the field" true
      (contains ~needle:"disolution" m)
  | Ok _ -> Alcotest.fail "accepted a misspelled config field"

(* --- plan cache --- *)

let test_cache_lru () =
  let c = Plan_cache.create ~capacity:2 () in
  Plan_cache.add c "a" "A";
  Plan_cache.add c "b" "B";
  Alcotest.(check (option string)) "hit a" (Some "A") (Plan_cache.find c "a");
  (* [a] was just promoted, so inserting [c] evicts [b]. *)
  Plan_cache.add c "c" "C";
  Alcotest.(check (option string)) "b evicted" None (Plan_cache.find c "b");
  Alcotest.(check (option string)) "a survives" (Some "A") (Plan_cache.find c "a");
  Alcotest.(check (option string)) "c present" (Some "C") (Plan_cache.find c "c");
  let s = Plan_cache.stats c in
  Alcotest.(check int) "one eviction" 1 s.Plan_cache.evictions;
  Alcotest.(check int) "length" 2 s.Plan_cache.length;
  Alcotest.(check int) "misses" 1 s.Plan_cache.misses;
  Alcotest.(check int) "hits" 3 s.Plan_cache.hits

let test_cache_refresh () =
  let c = Plan_cache.create ~capacity:2 () in
  Plan_cache.add c "a" "A";
  Plan_cache.add c "a" "A2";
  Alcotest.(check (option string)) "refreshed value" (Some "A2")
    (Plan_cache.find c "a");
  Alcotest.(check int) "no growth" 1 (Plan_cache.stats c).Plan_cache.length

(* Sharded cache under real parallelism: domains hammer overlapping
   keys across shards, then every invariant the sharding must preserve
   is checked — per-shard LRU bounds, totals equal to the field-wise
   sum of the per-shard stats, and hit/miss tallies accounting for
   every lookup. *)
let test_cache_sharded_stress () =
  let capacity = 32 and nshards = 4 and ndomains = 4 and ops = 1_000 in
  let nkeys = 64 in
  let c = Plan_cache.create ~capacity ~shards:nshards () in
  Alcotest.(check int) "shard count" nshards (Plan_cache.shard_count c);
  let worker d () =
    for i = 0 to ops - 1 do
      let k = Printf.sprintf "k%d" (((i * 7) + d) mod nkeys) in
      Plan_cache.add c k ("v" ^ k);
      (match Plan_cache.find c k with
      | Some v ->
        if not (String.equal v ("v" ^ k)) then
          failwith ("wrong value for " ^ k)
      | None -> ());
      if i mod 97 = 0 then ignore (Plan_cache.stats c)
    done
  in
  let domains = List.init ndomains (fun d -> Domain.spawn (worker d)) in
  List.iter Domain.join domains;
  let shard_stats = Plan_cache.shard_stats c in
  Alcotest.(check int) "one stats row per shard" nshards
    (Array.length shard_stats);
  Array.iteri
    (fun i (s : Plan_cache.stats) ->
      Alcotest.(check bool)
        (Printf.sprintf "shard %d within its LRU bound" i)
        true
        (s.Plan_cache.length <= s.Plan_cache.capacity))
    shard_stats;
  let total = Plan_cache.stats c in
  let sum f = Array.fold_left (fun acc s -> acc + f s) 0 shard_stats in
  Alcotest.(check int) "hits = sum of shard hits"
    (sum (fun s -> s.Plan_cache.hits)) total.Plan_cache.hits;
  Alcotest.(check int) "misses = sum of shard misses"
    (sum (fun s -> s.Plan_cache.misses)) total.Plan_cache.misses;
  Alcotest.(check int) "evictions = sum of shard evictions"
    (sum (fun s -> s.Plan_cache.evictions)) total.Plan_cache.evictions;
  Alcotest.(check int) "length = sum of shard lengths"
    (sum (fun s -> s.Plan_cache.length)) total.Plan_cache.length;
  (* Every [find] above was tallied exactly once, somewhere. *)
  Alcotest.(check int) "every lookup accounted for" (ndomains * ops)
    (total.Plan_cache.hits + total.Plan_cache.misses);
  Alcotest.(check bool) "64 keys through 32 slots forced evictions" true
    (total.Plan_cache.evictions > 0)

(* --- admission control --- *)

let test_admission () =
  let a = Admission.create ~limit:2 in
  Alcotest.(check bool) "slot 1" true (Admission.try_admit a);
  Alcotest.(check bool) "slot 2" true (Admission.try_admit a);
  Alcotest.(check bool) "slot 3 refused" false (Admission.try_admit a);
  Alcotest.(check int) "shed counted" 1 (Admission.shed_count a);
  Admission.release a;
  Alcotest.(check bool) "slot freed" true (Admission.try_admit a);
  Alcotest.(check int) "in flight" 2 (Admission.in_flight a);
  (* The high-water mark survives releases: it reports the deepest the
     shard has ever been, not where it is now. *)
  Admission.release a;
  Admission.release a;
  Alcotest.(check int) "peak sticks at the high-water mark" 2
    (Admission.peak a);
  Alcotest.(check int) "while in_flight drains" 0 (Admission.in_flight a)

(* --- the worker pool's dedicated mode --- *)

module Pool = Pdw_pool.Domain_pool

let test_pool_dedicated () =
  let pool = Pool.create ~size:3 ~dedicated:true () in
  let counts = Array.init 3 (fun _ -> Atomic.make 0) in
  let jobs_per_worker = 20 in
  for _ = 1 to jobs_per_worker do
    for i = 0 to 2 do
      Pool.submit_to pool i (fun () -> Atomic.incr counts.(i))
    done
  done;
  let deadline = Unix.gettimeofday () +. 5.0 in
  let all_done () =
    Array.for_all (fun c -> Atomic.get c = jobs_per_worker) counts
  in
  while (not (all_done ())) && Unix.gettimeofday () < deadline do
    Thread.delay 0.01
  done;
  Alcotest.(check bool) "every targeted job ran on its worker" true
    (all_done ());
  (* Each queue saw at least one enqueue, so each peak is positive, and
     a peak never exceeds what was ever enqueued there. *)
  Array.iteri
    (fun i p ->
      Alcotest.(check bool)
        (Printf.sprintf "worker %d peak in [1..%d]" i jobs_per_worker)
        true
        (p >= 1 && p <= jobs_per_worker))
    (Pool.peak_per_worker pool);
  Alcotest.(check int) "nothing left pending" 0 (Pool.pending pool);
  Pool.shutdown pool;
  match Pool.submit_to pool 0 (fun () -> ()) with
  | () -> Alcotest.fail "submit_to accepted a job after shutdown"
  | exception Invalid_argument _ -> ()

let test_pool_round_robin () =
  let pool = Pool.create ~size:2 ~dedicated:true () in
  let total = 10 in
  let seen = Atomic.make 0 in
  for _ = 1 to total do
    Pool.submit pool (fun () -> Atomic.incr seen)
  done;
  let deadline = Unix.gettimeofday () +. 5.0 in
  while Atomic.get seen < total && Unix.gettimeofday () < deadline do
    Thread.delay 0.01
  done;
  Alcotest.(check int) "all round-robin jobs ran" total (Atomic.get seen);
  (* Round-robin spreads the backlog: both private queues were used. *)
  Array.iteri
    (fun i p ->
      Alcotest.(check bool) (Printf.sprintf "worker %d saw work" i) true
        (p >= 1))
    (Pool.peak_per_worker pool);
  Pool.shutdown pool

(* --- the daemon, end to end --- *)

let fresh_socket () =
  let path = Filename.temp_file "pdw-svc" ".sock" in
  Sys.remove path;
  path

let with_server ?(workers = 2) ?(queue_limit = 4) ?(cache = 8)
    ?(timeout_ms = 30_000) ?store_dir f =
  let cfg =
    {
      Server.socket_path = fresh_socket ();
      workers;
      queue_limit;
      cache_capacity = cache;
      job_timeout_ms = timeout_ms;
      max_retries = 1;
      store_dir;
      store_max_bytes = 16 * 1024 * 1024;
    }
  in
  let srv = Server.start cfg in
  Fun.protect
    ~finally:(fun () -> Server.stop srv)
    (fun () -> f cfg.Server.socket_path srv)

(* [Plan]'s payload is an inline record, so destructure it here and hand
   back a plain tuple: (cached, coalesced, outcome). *)
let submit_ok c spec =
  match Client.request c (Protocol.Submit { spec; no_cache = false }) with
  | Ok (Protocol.Plan { cached; coalesced; outcome; _ }) ->
    (cached, coalesced, outcome)
  | Ok _ -> Alcotest.fail "expected a plan reply"
  | Error m -> Alcotest.fail m

let test_server_plan_and_cache () =
  with_server @@ fun path _srv ->
  let spec = spec_of "pcr" in
  let expected =
    match Engine.plan spec with Ok o -> o | Error m -> Alcotest.fail m
  in
  Client.with_client path @@ fun c ->
  let cached1, _, outcome1 = submit_ok c spec in
  Alcotest.(check bool) "first is computed" false cached1;
  Alcotest.(check string) "served plan = one-shot plan" expected outcome1;
  let cached2, _, outcome2 = submit_ok c spec in
  Alcotest.(check bool) "repeat is a cache hit" true cached2;
  Alcotest.(check string) "cached bytes identical" expected outcome2;
  (* Case-insensitive canonicalization: "PCR" hits the same entry. *)
  let cached3, _, _ = submit_ok c (spec_of "PCR") in
  Alcotest.(check bool) "canonicalized repeat hits" true cached3

let test_server_simple_ops () =
  with_server @@ fun path srv ->
  Client.with_client path @@ fun c ->
  (match Client.request c Protocol.Ping with
  | Ok Protocol.Pong -> ()
  | _ -> Alcotest.fail "ping");
  (match Client.request c Protocol.Version with
  | Ok (Protocol.Version_reply v) ->
    Alcotest.(check string) "version matches the library"
      Pdw_service.Version.version v
  | _ -> Alcotest.fail "version");
  (* The in-process [handle] answers identically to the socket path. *)
  (match Server.handle srv Protocol.Ping with
  | Protocol.Pong -> ()
  | _ -> Alcotest.fail "in-process ping");
  match Client.request c Protocol.Stats with
  | Ok (Protocol.Stats_reply j) ->
    let member_keys =
      [ "version"; "workers"; "queue"; "cache"; "requests"; "latency_ms" ]
    in
    List.iter
      (fun k ->
        Alcotest.(check bool) (Printf.sprintf "stats has %S" k) true
          (Json.member k j <> None))
      member_keys
  | _ -> Alcotest.fail "stats"

let test_server_bad_requests () =
  with_server @@ fun path _srv ->
  Client.with_client path @@ fun c ->
  (match Client.request c (Protocol.Submit { spec = spec_of "nope"; no_cache = false }) with
  | Ok (Protocol.Error m) ->
    Alcotest.(check bool) "names the benchmark" true (contains ~needle:"nope" m)
  | _ -> Alcotest.fail "expected an error reply");
  match
    Client.request c
      (Protocol.Submit
         { spec = Protocol.spec (Protocol.Inline "not an assay {"); no_cache = false })
  with
  | Ok (Protocol.Error _) -> ()
  | _ -> Alcotest.fail "expected a parse-error reply"

let test_server_shed () =
  (* One worker, two in-flight slots.  Two long burns fill the slots
     (one running, one queued); the third request must be refused with
     an explicit shed, not queued silently. *)
  with_server ~workers:1 ~queue_limit:2 @@ fun path _srv ->
  let burn () =
    Client.with_client path @@ fun c ->
    Client.request c (Protocol.Burn { ms = 500 })
  in
  let t1 = Thread.create burn () in
  let t2 = Thread.create burn () in
  Thread.delay 0.15;
  (Client.with_client path @@ fun c ->
   match Client.request c (Protocol.Burn { ms = 10 }) with
   | Ok (Protocol.Shed { in_flight; limit }) ->
     Alcotest.(check int) "limit reported" 2 limit;
     Alcotest.(check bool) "in_flight at limit" true (in_flight >= 2)
   | Ok r ->
     Alcotest.failf "expected shed, got %s"
       (Json.to_string (Protocol.reply_to_json r))
   | Error m -> Alcotest.fail m);
  List.iter Thread.join [ t1; t2 ]

let test_server_timeout () =
  (* One worker busy burning for 600 ms; a submit with a 150 ms budget
     must come back as an explicit timeout, not hang. *)
  with_server ~workers:1 ~queue_limit:4 ~timeout_ms:150 @@ fun path _srv ->
  let burner =
    Thread.create
      (fun () ->
        Client.with_client path @@ fun c ->
        Client.request c (Protocol.Burn { ms = 600 }))
      ()
  in
  Thread.delay 0.15;
  (Client.with_client path @@ fun c ->
   match Client.request c (Protocol.Submit { spec = spec_of "pcr"; no_cache = false }) with
   | Ok (Protocol.Timeout { after_ms }) ->
     Alcotest.(check int) "reports its budget" 150 after_ms
   | Ok r ->
     Alcotest.failf "expected timeout, got %s"
       (Json.to_string (Protocol.reply_to_json r))
   | Error m -> Alcotest.fail m);
  Thread.join burner

let test_server_loadgen () =
  with_server ~workers:2 ~queue_limit:64 @@ fun path _srv ->
  let specs = [ spec_of "pcr"; spec_of "ivd" ] in
  let s =
    Loadgen.run ~socket_path:path ~clients:8 ~per_client:3 ~verify:true specs
  in
  Alcotest.(check int) "all requests answered with plans" s.Loadgen.requests
    s.Loadgen.plans;
  Alcotest.(check int) "no shed at low load" 0 s.Loadgen.shed;
  Alcotest.(check int) "no mismatches" 0 s.Loadgen.mismatches;
  Alcotest.(check int) "no errors" 0 s.Loadgen.errors;
  Alcotest.(check bool) "duplicates were cached or coalesced" true
    (s.Loadgen.cached + s.Loadgen.coalesced > 0)

(* A connection's requests leave in one batched write and the replies
   come back in request order, positionally aligned. *)
let test_server_pipelined () =
  with_server @@ fun path _srv ->
  let expected =
    match Engine.plan (spec_of "pcr") with
    | Ok o -> o
    | Error m -> Alcotest.fail m
  in
  Client.with_client path @@ fun c ->
  let submit = Protocol.Submit { spec = spec_of "pcr"; no_cache = false } in
  match
    Client.request_many c [ Protocol.Ping; submit; Protocol.Version; submit ]
  with
  | [ Ok Protocol.Pong;
      Ok (Protocol.Plan { outcome = o1; _ });
      Ok (Protocol.Version_reply _);
      Ok (Protocol.Plan { cached; outcome = o2; _ });
    ] ->
    Alcotest.(check string) "first plan byte-identical" expected o1;
    Alcotest.(check string) "second plan byte-identical" expected o2;
    (* Same connection, requests processed in order: by the time the
       duplicate runs, the first outcome is in the cache. *)
    Alcotest.(check bool) "duplicate in the same batch hits" true cached
  | replies ->
    Alcotest.failf "unexpected replies: %s"
      (String.concat "; "
         (List.map
            (function
              | Ok r -> Json.to_string (Protocol.reply_to_json r)
              | Error m -> "error " ^ m)
            replies))

(* A batch far bigger than the client's chunking threshold: the client
   must interleave writes and reads (unbounded write-before-read can
   deadlock against a server blocked flushing replies) and still hand
   back every reply in request order. *)
let test_server_pipelined_huge_batch () =
  with_server ~workers:1 @@ fun path _srv ->
  Client.with_client path @@ fun c ->
  let n = 10_000 in
  let replies = Client.request_many c (List.init n (fun _ -> Protocol.Ping)) in
  Alcotest.(check int) "one reply per request" n (List.length replies);
  List.iteri
    (fun i r ->
      match r with
      | Ok Protocol.Pong -> ()
      | Ok other ->
        Alcotest.failf "reply %d: expected pong, got %s" i
          (Json.to_string (Protocol.reply_to_json other))
      | Error m -> Alcotest.failf "reply %d: %s" i m)
    replies

(* A no-cache campaign is a pure planner workout: nothing is served
   from the cache and nothing coalesces — every request plans from
   scratch on a worker domain, still byte-identical to a local run. *)
let test_server_loadgen_no_cache () =
  with_server ~workers:2 ~queue_limit:64 @@ fun path _srv ->
  let s =
    Loadgen.run ~socket_path:path ~clients:4 ~per_client:3 ~warmup:4
      ~no_cache:true ~verify:true
      [ spec_of "pcr"; spec_of "ivd" ]
  in
  Alcotest.(check bool) "summary says no-cache" true s.Loadgen.no_cache;
  Alcotest.(check int) "every request planned" s.Loadgen.requests
    s.Loadgen.plans;
  Alcotest.(check int) "nothing served from the cache" 0 s.Loadgen.cached;
  Alcotest.(check int) "nothing coalesced" 0 s.Loadgen.coalesced;
  Alcotest.(check int) "no mismatches" 0 s.Loadgen.mismatches;
  Alcotest.(check int) "no errors" 0 s.Loadgen.errors

(* The stats endpoint under live load: whatever the snapshot caught
   mid-flight, every total must equal the field-wise sum of the
   per-shard rows it was reported with. *)
let test_server_stats_consistency () =
  with_server ~workers:2 ~queue_limit:64 ~cache:8 @@ fun path srv ->
  let stop = Atomic.make false in
  let driver k =
    Client.with_client path @@ fun c ->
    let specs = [| spec_of "pcr"; spec_of "ivd"; spec_of "proteinsplit" |] in
    let i = ref k in
    while not (Atomic.get stop) do
      (match
         Client.request c
           (Protocol.Submit
              { spec = specs.(!i mod 3); no_cache = !i mod 5 = 0 })
       with
      | Ok _ -> ()
      | Error m -> failwith m);
      incr i
    done
  in
  let drivers = List.init 4 (fun k -> Thread.create driver k) in
  let jget j k =
    match Json.member k j with
    | Some v -> v
    | None -> Alcotest.failf "stats missing %S" k
  in
  let jint j k =
    match Json.to_int (jget j k) with
    | Some i -> i
    | None -> Alcotest.failf "stats field %S is not an int" k
  in
  let check_snapshot s =
    let shards =
      match Json.to_list (jget s "shards") with
      | Some l -> l
      | None -> Alcotest.fail "shards is not an array"
    in
    Alcotest.(check int) "one row per worker" 2 (List.length shards);
    let sum f = List.fold_left (fun acc sh -> acc + f sh) 0 shards in
    let queue = jget s "queue" in
    Alcotest.(check int) "in_flight = sum of shards"
      (sum (fun sh -> jint sh "in_flight"))
      (jint queue "in_flight");
    Alcotest.(check int) "shed = sum of shards"
      (sum (fun sh -> jint sh "shed"))
      (jint queue "shed");
    Alcotest.(check int) "depth_peak = max over shards"
      (List.fold_left (fun acc sh -> max acc (jint sh "depth_peak")) 0 shards)
      (jint queue "depth_peak");
    let requests = jget s "requests" in
    List.iter
      (fun k ->
        Alcotest.(check int)
          (Printf.sprintf "requests.%s = sum of shards" k)
          (sum (fun sh -> jint sh k))
          (jint requests k))
      [ "submitted"; "completed"; "coalesced"; "timeouts"; "errors"; "burns" ];
    let cache = jget s "cache" in
    List.iter
      (fun k ->
        Alcotest.(check int)
          (Printf.sprintf "cache.%s = sum of shards" k)
          (sum (fun sh -> jint (jget sh "cache") k))
          (jint cache k))
      [ "hits"; "misses"; "evictions"; "length" ]
  in
  Fun.protect
    ~finally:(fun () ->
      Atomic.set stop true;
      List.iter Thread.join drivers)
    (fun () ->
      (* Several snapshots while the drivers are mid-request: totals
         and shard rows must agree in every one of them. *)
      for _ = 1 to 5 do
        Thread.delay 0.05;
        match Server.handle srv Protocol.Stats with
        | Protocol.Stats_reply s -> check_snapshot s
        | _ -> Alcotest.fail "expected a stats reply"
      done);
  (* Quiescent check: every driver has its last reply, so once the
     final job's slot release lands, nothing is in flight or queued. *)
  Thread.delay 0.05;
  match Server.handle srv Protocol.Stats with
  | Protocol.Stats_reply s ->
    check_snapshot s;
    let queue = jget s "queue" in
    Alcotest.(check int) "nothing in flight when idle" 0
      (jint queue "in_flight");
    Alcotest.(check int) "nothing queued when idle" 0 (jint queue "pending")
  | _ -> Alcotest.fail "expected a stats reply"

(* Warm-up requests prime the cache but never touch the recorded
   figures; the measured phase then runs fully cached. *)
let test_server_loadgen_warmup () =
  with_server ~workers:2 ~queue_limit:64 @@ fun path _srv ->
  let s =
    Loadgen.run ~socket_path:path ~clients:4 ~per_client:4 ~warmup:8
      ~pipeline:2 ~verify:true [ spec_of "pcr" ]
  in
  Alcotest.(check int) "summary reports the warm-up size" 8 s.Loadgen.warmup;
  Alcotest.(check int) "summary reports the pipeline depth" 2
    s.Loadgen.pipeline;
  Alcotest.(check int) "measured requests exclude warm-up" 16
    s.Loadgen.requests;
  Alcotest.(check int) "every measured request planned" 16 s.Loadgen.plans;
  (* The warm-up already planned the only spec, so the measured phase
     is pure cache hits — the steady state the percentiles describe. *)
  Alcotest.(check int) "measured phase fully cached" 16 s.Loadgen.cached;
  Alcotest.(check int) "no mismatches" 0 s.Loadgen.mismatches;
  Alcotest.(check int) "no errors" 0 s.Loadgen.errors

(* --- the scrape surface --- *)

(* A strict-enough parser for the Prometheus text exposition format:
   every line must be a [# HELP]/[# TYPE] comment or a sample
   [name{labels} value]; samples are collected keyed by their full
   series name (labels included), types by family name.  Anything
   malformed fails the test on the spot. *)
let parse_exposition text =
  let samples = Hashtbl.create 64 in
  let types = Hashtbl.create 32 in
  let is_name_char ch =
    (ch >= 'a' && ch <= 'z')
    || (ch >= 'A' && ch <= 'Z')
    || (ch >= '0' && ch <= '9')
    || ch = '_' || ch = ':'
  in
  let starts_with p s =
    String.length s >= String.length p && String.sub s 0 (String.length p) = p
  in
  let value_of line s =
    match s with
    | "+Inf" -> infinity
    | "-Inf" -> neg_infinity
    | "NaN" -> Float.nan
    | s -> (
      match float_of_string_opt s with
      | Some v -> v
      | None -> Alcotest.failf "unparseable value in sample line %S" line)
  in
  List.iter
    (fun line ->
      if starts_with "# HELP " line then ()
      else if starts_with "# TYPE " line then (
        match String.split_on_char ' ' line with
        | [ "#"; "TYPE"; name; kind ] ->
          if not (List.mem kind [ "counter"; "gauge"; "histogram" ]) then
            Alcotest.failf "unknown TYPE %S for %s" kind name;
          if Hashtbl.mem types name then
            Alcotest.failf "duplicate TYPE for %s" name;
          Hashtbl.replace types name kind
        | _ -> Alcotest.failf "malformed TYPE line %S" line)
      else if line <> "" && line.[0] = '#' then
        Alcotest.failf "unexpected comment %S" line
      else
        match String.rindex_opt line ' ' with
        | None -> Alcotest.failf "malformed sample line %S" line
        | Some sp ->
          let series = String.sub line 0 sp in
          let v =
            value_of line (String.sub line (sp + 1) (String.length line - sp - 1))
          in
          let name_end =
            match String.index_opt series '{' with
            | Some i ->
              if series.[String.length series - 1] <> '}' then
                Alcotest.failf "unclosed label set in %S" line;
              i
            | None -> String.length series
          in
          if name_end = 0 then Alcotest.failf "empty metric name in %S" line;
          String.iteri
            (fun i ch ->
              if i < name_end && not (is_name_char ch) then
                Alcotest.failf "bad metric name in %S" line)
            series;
          if Hashtbl.mem samples series then
            Alcotest.failf "duplicate series %S" series;
          Hashtbl.replace samples series v)
    (List.filter (fun l -> l <> "") (String.split_on_char '\n' text));
  (samples, types)

(* The metrics verb end to end: a loaded server's exposition parses,
   carries every advertised family with the right type, and is
   internally consistent — per-shard histogram counts sum to the merged
   count, which equals the number of plans actually served. *)
let test_server_metrics () =
  with_server ~workers:2 @@ fun path srv ->
  Client.with_client path @@ fun c ->
  let _ = submit_ok c (spec_of "pcr") in
  let _ = submit_ok c (spec_of "pcr") in
  (* cache hit *)
  let _ = submit_ok c (spec_of "ivd") in
  let text =
    match Client.request c Protocol.Metrics with
    | Ok (Protocol.Metrics_reply t) -> t
    | Ok r ->
      Alcotest.failf "expected metrics, got %s"
        (Json.to_string (Protocol.reply_to_json r))
    | Error m -> Alcotest.fail m
  in
  (* The in-process handle serves the same surface. *)
  (match Server.handle srv Protocol.Metrics with
  | Protocol.Metrics_reply _ -> ()
  | _ -> Alcotest.fail "in-process metrics");
  let samples, types = parse_exposition text in
  let get series =
    match Hashtbl.find_opt samples series with
    | Some v -> v
    | None -> Alcotest.failf "missing series %S" series
  in
  List.iter
    (fun (name, kind) ->
      match Hashtbl.find_opt types name with
      | Some k -> Alcotest.(check string) (name ^ " type") kind k
      | None -> Alcotest.failf "missing family %s" name)
    [
      ("pdw_uptime_seconds", "gauge");
      ("pdw_workers", "gauge");
      ("pdw_requests_submitted_total", "counter");
      ("pdw_requests_completed_total", "counter");
      ("pdw_requests_shed_total", "counter");
      ("pdw_shard_requests_total", "counter");
      ("pdw_queue_in_flight", "gauge");
      ("pdw_queue_limit", "gauge");
      ("pdw_cache_hits_total", "counter");
      ("pdw_cache_misses_total", "counter");
      ("pdw_request_latency_ms", "histogram");
      ("pdw_queue_wait_ms", "histogram");
      ("pdw_service_ms", "histogram");
      ("pdw_shard_request_latency_ms", "histogram");
      ("pdw_worker_jobs_done_total", "counter");
      ("pdw_worker_minor_words_total", "counter");
      ("pdw_worker_queue_pending", "gauge");
      ("pdw_reqtrace_seen_total", "counter");
    ];
  (* Request accounting: 3 submits, one served from the cache. *)
  Alcotest.(check (float 0.)) "submitted" 3.0 (get "pdw_requests_submitted_total");
  Alcotest.(check (float 0.)) "cache hits" 1.0 (get "pdw_cache_hits_total");
  Alcotest.(check (float 0.)) "uncoalesced" 0.0 (get "pdw_requests_coalesced_total");
  (* Every plan reply — hit or freshly planned — recorded one latency
     sample; the per-shard rows sum exactly to the merged family. *)
  let merged = get "pdw_request_latency_ms_count" in
  Alcotest.(check (float 0.)) "latency count = plans served" 3.0 merged;
  let sum_prefix prefix =
    Hashtbl.fold
      (fun series v acc ->
        if
          String.length series >= String.length prefix
          && String.sub series 0 (String.length prefix) = prefix
        then acc +. v
        else acc)
      samples 0.0
  in
  Alcotest.(check (float 0.)) "shard counts sum to the merged count" merged
    (sum_prefix "pdw_shard_request_latency_ms_count{");
  Alcotest.(check (float 0.)) "+Inf bucket equals the count" merged
    (get "pdw_request_latency_ms_bucket{le=\"+Inf\"}");
  (* Two jobs actually ran on workers (the hit never left the front). *)
  Alcotest.(check (float 0.)) "service histogram counts worker jobs" 2.0
    (get "pdw_service_ms_count");
  Alcotest.(check (float 0.)) "queue-wait histogram counts worker jobs" 2.0
    (get "pdw_queue_wait_ms_count");
  Alcotest.(check (float 0.)) "worker jobs sum to the planner jobs" 2.0
    (sum_prefix "pdw_worker_jobs_done_total{");
  Alcotest.(check (float 0.)) "every submit was traced" 3.0
    (get "pdw_reqtrace_seen_total");
  Alcotest.(check bool) "latency sum is positive" true
    (get "pdw_request_latency_ms_sum" > 0.0)

(* The server-side telemetry APIs behind the bench's per-campaign
   breakdown: interval histograms via diff of cumulative snapshots, and
   the recent-requests ring with its stage breakdowns. *)
let test_server_telemetry_and_ring () =
  with_server @@ fun path srv ->
  Client.with_client path @@ fun c ->
  let module H = Pdw_obs.Histogram in
  let module R = Pdw_obs.Reqtrace in
  let before = Server.telemetry srv in
  let _ = submit_ok c (spec_of "pcr") in
  let _ = submit_ok c (spec_of "pcr") in
  let after = Server.telemetry srv in
  let interval = H.diff after.Server.latency before.Server.latency in
  Alcotest.(check int) "two plan replies in the interval" 2 (H.count interval);
  Alcotest.(check int) "one planner job serviced" 1
    (H.count after.Server.service);
  Alcotest.(check int) "one queue wait recorded" 1
    (H.count after.Server.queue_wait);
  match Server.recent_requests srv with
  | [ hit; planned ] ->
    Alcotest.(check bool) "newest record is the cache hit" true
      (hit.R.outcome = R.Hit);
    Alcotest.(check bool) "older record planned" true
      (planned.R.outcome = R.Planned);
    Alcotest.(check bool) "ids mint in accept order" true
      (planned.R.id < hit.R.id);
    Alcotest.(check string) "digests correlate" planned.R.digest hit.R.digest;
    (* The planned record carries the full boundary-by-boundary story:
       front stages, queue wait, the engine's own stage names. *)
    List.iter
      (fun stage ->
        Alcotest.(check bool)
          (Printf.sprintf "planned record has stage %S" stage)
          true
          (List.mem_assoc stage planned.R.stages))
      [ "cache"; "admission"; "queue"; "synthesize"; "optimize"; "wait" ];
    Alcotest.(check bool) "hit record is front-door only" true
      (List.map fst hit.R.stages = [ "cache" ])
  | rs -> Alcotest.failf "expected 2 recent records, got %d" (List.length rs)

let test_server_shutdown_request () =
  let cfg =
    Server.default_config ~socket_path:(fresh_socket ())
  in
  let cfg = { cfg with Server.workers = 1 } in
  let srv = Server.start cfg in
  (Client.with_client cfg.Server.socket_path @@ fun c ->
   match Client.request c Protocol.Shutdown with
   | Ok Protocol.Bye -> ()
   | _ -> Alcotest.fail "expected bye");
  Server.wait srv;
  Alcotest.(check bool) "socket file removed" false
    (Sys.file_exists cfg.Server.socket_path)

(* --- adversarial framing: chunk boundaries must not matter --- *)

let encode_frame payload =
  Printf.sprintf "%d\n%s" (String.length payload) payload

(* Feed a byte stream through a pipe in the given segments, pausing
   between writes so each segment (very likely) lands as its own
   [Unix.read] — the buffered reader must reassemble frames across any
   such boundary.  Correctness does not depend on the pause: if the
   kernel coalesces two segments the test still checks the frames. *)
let read_stream_in_segments ~segments ~buf_size k =
  with_pipe @@ fun r w ->
  let writer =
    Thread.create
      (fun () ->
        List.iter
          (fun seg ->
            if String.length seg > 0 then
              ignore (Unix.write_substring w seg 0 (String.length seg));
            Thread.delay 0.001)
          segments;
        Unix.close w)
      ()
  in
  let result = k (Wire.Buffered.create ~buf_size r) in
  Thread.join writer;
  result

(* Two frames, the stream cut at EVERY byte position — header split
   mid-digit, split exactly at the '\n', split inside the payload, and
   the degenerate cuts at both ends all reassemble. *)
let test_wire_split_every_byte () =
  let frames = [ "{\"op\":\"ping\"}"; String.init 64 Char.chr ] in
  let stream = String.concat "" (List.map encode_frame frames) in
  let n = String.length stream in
  for cut = 0 to n do
    let segments = [ String.sub stream 0 cut; String.sub stream cut (n - cut) ] in
    read_stream_in_segments ~segments ~buf_size:1024 @@ fun rd ->
    List.iteri
      (fun i expected ->
        match Wire.Buffered.read_frame rd with
        | Some got ->
          if not (String.equal got expected) then
            Alcotest.failf "cut at %d: frame %d corrupted" cut i
        | None -> Alcotest.failf "cut at %d: eof before frame %d" cut i)
      frames;
    if Wire.Buffered.read_frame rd <> None then
      Alcotest.failf "cut at %d: trailing bytes after the last frame" cut
  done

(* EOF inside a frame — mid-payload or even mid-header — is a protocol
   error, never a silent truncation or a clean end-of-stream. *)
let test_wire_truncated_tail () =
  let first = "{\"op\":\"ping\"}" in
  let expect_error_after_first tail =
    read_stream_in_segments
      ~segments:[ encode_frame first; tail ]
      ~buf_size:1024
    @@ fun rd ->
    (match Wire.Buffered.read_frame rd with
    | Some got -> Alcotest.(check string) "intact frame served first" first got
    | None -> Alcotest.fail "eof before the intact frame");
    match Wire.Buffered.read_frame rd with
    | exception Wire.Protocol_error _ -> ()
    | Some _ | None ->
      Alcotest.failf "truncated tail %S must raise Protocol_error" tail
  in
  expect_error_after_first "10\nabc";
  (* payload cut short *)
  expect_error_after_first "12"
(* header cut short *)

let prop_wire_chunking_independent =
  let gen =
    QCheck2.Gen.(
      pair
        (list_size (1 -- 4) (string_size (0 -- 1500)))
        (list_size (0 -- 12) (0 -- 10_000)))
  in
  QCheck2.Test.make ~name:"buffered reads are chunking-independent"
    ~count:25 gen (fun (payloads, raw_cuts) ->
      let stream = String.concat "" (List.map encode_frame payloads) in
      let n = String.length stream in
      let cuts =
        List.sort_uniq compare
          (List.filter_map
             (fun c -> if n = 0 then None else Some (c mod n))
             raw_cuts)
      in
      let segments =
        let bounds = (0 :: cuts) @ [ n ] in
        let rec slice = function
          | a :: (b :: _ as rest) -> String.sub stream a (b - a) :: slice rest
          | _ -> []
        in
        slice bounds
      in
      (* A 1 KiB read buffer with payloads up to 1500 bytes exercises
         both the buffered path and the straight-from-fd spill. *)
      read_stream_in_segments ~segments ~buf_size:1024 @@ fun rd ->
      List.for_all
        (fun expected ->
          match Wire.Buffered.read_frame rd with
          | Some got -> String.equal got expected
          | None -> false)
        payloads
      && Wire.Buffered.read_frame rd = None)

(* --- the persistent plan store --- *)

let rec rm_rf path =
  match Sys.is_directory path with
  | true ->
    Array.iter (fun e -> rm_rf (Filename.concat path e)) (Sys.readdir path);
    Unix.rmdir path
  | false -> Sys.remove path
  | exception Sys_error _ -> ()

let with_store_dir f =
  let dir = Filename.temp_file "pdw-store" "" in
  Sys.remove dir;
  Fun.protect ~finally:(fun () -> rm_rf dir) (fun () -> f dir)

let hex_digest s = Digest.to_hex (Digest.string s)

let test_store_roundtrip () =
  with_store_dir @@ fun dir ->
  let st = Plan_store.open_ ~dir () in
  let d = hex_digest "a" in
  Plan_store.add st d "payload-A";
  Alcotest.(check (option string)) "stored plan found" (Some "payload-A")
    (Plan_store.find st d);
  Alcotest.(check (option string)) "unknown digest misses" None
    (Plan_store.find st (hex_digest "zzz"));
  (* A digest is a hex string; anything else must never reach the
     filesystem (no path traversal through the content address). *)
  Alcotest.(check (option string)) "non-hex digest refused" None
    (Plan_store.find st "../../etc/passwd");
  let s = Plan_store.stats st in
  Alcotest.(check int) "one write" 1 s.Plan_store.writes;
  Alcotest.(check int) "one entry" 1 s.Plan_store.entries;
  Alcotest.(check bool) "bytes accounted" true (s.Plan_store.bytes > 0);
  (* Reopen: the index is rebuilt from the directory scan, so the plan
     survives a process restart. *)
  let st2 = Plan_store.open_ ~dir () in
  Alcotest.(check (option string)) "survives reopen" (Some "payload-A")
    (Plan_store.find st2 d)

let mangle_file file f =
  let ic = open_in_bin file in
  let len = in_channel_length ic in
  let bytes = really_input_string ic len in
  close_in ic;
  let mangled = f bytes in
  let oc = open_out_bin file in
  output_string oc mangled;
  close_out oc

let test_store_corrupt () =
  let check_refused name mangle =
    with_store_dir @@ fun dir ->
    let d = hex_digest name in
    let st = Plan_store.open_ ~dir () in
    Plan_store.add st d ("plan bytes for " ^ name);
    let file = Filename.concat dir (d ^ ".plan") in
    Alcotest.(check bool) (name ^ ": file exists") true (Sys.file_exists file);
    mangle_file file mangle;
    (* A fresh open adopts the damaged file from the scan; the CRC (or
       length) check must refuse it and delete it. *)
    let st2 = Plan_store.open_ ~dir () in
    Alcotest.(check (option string)) (name ^ ": corrupt entry refused") None
      (Plan_store.find st2 d);
    Alcotest.(check bool) (name ^ ": corruption counted") true
      ((Plan_store.stats st2).Plan_store.corrupt >= 1);
    Alcotest.(check bool) (name ^ ": damaged file deleted") false
      (Sys.file_exists file)
  in
  (* last payload byte flipped: length fine, CRC wrong *)
  check_refused "bitflip" (fun s ->
      let b = Bytes.of_string s in
      let i = Bytes.length b - 1 in
      Bytes.set b i (Char.chr (Char.code (Bytes.get b i) lxor 1));
      Bytes.to_string b);
  (* torn write: file cut mid-payload *)
  check_refused "truncated" (fun s -> String.sub s 0 (String.length s / 2))

let test_store_eviction () =
  with_store_dir @@ fun dir ->
  let payload = String.make 1024 'p' in
  (* Budget for three ~1 KiB files (headers included), not four. *)
  let st = Plan_store.open_ ~dir ~max_bytes:3500 () in
  let d i = hex_digest (string_of_int i) in
  for i = 1 to 4 do
    Plan_store.add st (d i) payload
  done;
  let s = Plan_store.stats st in
  Alcotest.(check bool) "bytes held to the budget" true
    (s.Plan_store.bytes <= 3500);
  Alcotest.(check int) "one eviction" 1 s.Plan_store.evictions;
  Alcotest.(check int) "three entries left" 3 s.Plan_store.entries;
  Alcotest.(check (option string)) "least-recently-used unlinked" None
    (Plan_store.find st (d 1));
  Alcotest.(check (option string)) "newest survives" (Some payload)
    (Plan_store.find st (d 4))

(* The two-tier cache: write-through demotions, store-hit promotions,
   and memory eviction that never touches the persistent tier. *)
let test_cache_tiers () =
  with_store_dir @@ fun dir ->
  let store = Plan_store.open_ ~dir () in
  let c = Plan_cache.create ~capacity:1 ~store () in
  let da = hex_digest "a" and db = hex_digest "b" in
  Plan_cache.add c da "A";
  (* write-through *)
  Plan_cache.add c db "B";
  (* evicts [a] from memory; the store still has it *)
  (match Plan_cache.find_tier c da with
  | Some ("A", Plan_cache.Store) -> ()
  | Some (_, Plan_cache.Memory) -> Alcotest.fail "evicted entry still in memory"
  | Some _ -> Alcotest.fail "wrong payload from the store tier"
  | None -> Alcotest.fail "memory eviction must not reach the store");
  (* the store hit was promoted: now it answers from memory *)
  (match Plan_cache.find_tier c da with
  | Some ("A", Plan_cache.Memory) -> ()
  | _ -> Alcotest.fail "store hit was not promoted into memory");
  let s = Plan_cache.stats c in
  Alcotest.(check int) "both adds wrote through" 2 s.Plan_cache.demotions;
  Alcotest.(check int) "one promotion" 1 s.Plan_cache.promotions;
  Alcotest.(check int) "memory hit counted" 1 s.Plan_cache.hits;
  Alcotest.(check int) "memory miss counted" 1 s.Plan_cache.misses;
  match Plan_cache.store_stats c with
  | Some st ->
    Alcotest.(check int) "store saw both writes" 2 st.Plan_store.writes;
    Alcotest.(check int) "store served the fall-through" 1 st.Plan_store.hits
  | None -> Alcotest.fail "store_stats missing with a store configured"

(* --- the version handshake --- *)

let test_server_hello () =
  with_server @@ fun path _srv ->
  Client.with_client path @@ fun c ->
  (match
     Client.request c
       (Protocol.Hello { version = "test-harness"; rev = Protocol.wire_rev })
   with
  | Ok (Protocol.Hello_reply { version; rev }) ->
    Alcotest.(check string) "server states its build version"
      Pdw_service.Version.version version;
    Alcotest.(check int) "server states its wire rev" Protocol.wire_rev rev
  | Ok r ->
    Alcotest.failf "expected hello_reply, got %s"
      (Json.to_string (Protocol.reply_to_json r))
  | Error m -> Alcotest.fail m);
  (* A rev mismatch is a loud typed error — the connection survives and
     the message names both revisions. *)
  (match
     Client.request c
       (Protocol.Hello { version = "test-harness"; rev = Protocol.wire_rev + 1 })
   with
  | Ok (Protocol.Error m) ->
    Alcotest.(check bool) "error names the server's rev" true
      (contains ~needle:(string_of_int Protocol.wire_rev) m);
    Alcotest.(check bool) "error names the peer's rev" true
      (contains ~needle:(string_of_int (Protocol.wire_rev + 1)) m)
  | Ok r ->
    Alcotest.failf "rev mismatch must be a typed error, got %s"
      (Json.to_string (Protocol.reply_to_json r))
  | Error m -> Alcotest.failf "decode failure instead of a typed error: %s" m);
  match Client.request c Protocol.Ping with
  | Ok Protocol.Pong -> ()
  | _ -> Alcotest.fail "connection must survive a refused handshake"

(* --- the persistent tier behind the daemon: warm-store restart --- *)

let submit_tier c spec =
  match Client.request c (Protocol.Submit { spec; no_cache = false }) with
  | Ok (Protocol.Plan { cached; tier; outcome; _ }) -> (cached, tier, outcome)
  | Ok r ->
    Alcotest.failf "expected a plan reply, got %s"
      (Json.to_string (Protocol.reply_to_json r))
  | Error m -> Alcotest.fail m

(* The ISSUE's acceptance case: a daemon restarted against a warm store
   serves its first request for a previously planned digest from disk —
   cached, tier [store], byte-identical — without running the planner. *)
let test_server_store_restart () =
  with_store_dir @@ fun dir ->
  let spec = spec_of "pcr" in
  let expected =
    match Engine.plan spec with Ok o -> o | Error m -> Alcotest.fail m
  in
  (with_server ~store_dir:dir @@ fun path _srv ->
   Client.with_client path @@ fun c ->
   let cached, tier, outcome = submit_tier c spec in
   Alcotest.(check bool) "first run computes" false cached;
   Alcotest.(check bool) "first run planned" true (tier = Protocol.Planned);
   Alcotest.(check string) "first run byte-identical" expected outcome);
  (* the first daemon is gone; a fresh one shares only the directory *)
  with_server ~store_dir:dir @@ fun path srv ->
  Client.with_client path @@ fun c ->
  let cached, tier, outcome = submit_tier c spec in
  Alcotest.(check bool) "restart serves from cache" true cached;
  Alcotest.(check bool) "restart's first hit is the store tier" true
    (tier = Protocol.Store);
  Alcotest.(check string) "restart byte-identical" expected outcome;
  match Server.handle srv Protocol.Stats with
  | Protocol.Stats_reply j ->
    let jint path' =
      let v =
        List.fold_left
          (fun acc k -> Option.bind acc (Json.member k))
          (Some j) path'
      in
      match Option.bind v Json.to_int with
      | Some i -> i
      | None -> Alcotest.failf "stats missing %s" (String.concat "." path')
    in
    Alcotest.(check int) "the store hit was promoted into memory" 1
      (jint [ "cache"; "promotions" ]);
    Alcotest.(check int) "the store tier recorded the hit" 1
      (jint [ "cache"; "store"; "hits" ]);
    (* no planner job ran: the outcome came off disk *)
    Alcotest.(check int) "nothing reached the workers" 0
      (jint [ "requests"; "completed" ])
  | _ -> Alcotest.fail "expected a stats reply"

(* --- the consistent-hash ring --- *)

let ring_keys n = List.init n (fun i -> Printf.sprintf "digest-%04d" i)

let test_ring_determinism_and_balance () =
  let nodes = [ "shard-0"; "shard-1"; "shard-2" ] in
  let r1 = Router.Ring.create ~nodes ~vnodes:64 in
  let r2 = Router.Ring.create ~nodes ~vnodes:64 in
  Alcotest.(check int) "points = nodes x vnodes" (3 * 64)
    (Router.Ring.size r1);
  let keys = ring_keys 3000 in
  let counts = Hashtbl.create 3 in
  List.iter
    (fun k ->
      (match (Router.Ring.lookup r1 k, Router.Ring.lookup r2 k) with
      | Some a, Some b ->
        Alcotest.(check string) ("deterministic owner for " ^ k) a b
      | _ -> Alcotest.fail "lookup on a non-empty ring");
      match Router.Ring.lookup r1 k with
      | Some owner ->
        Hashtbl.replace counts owner
          (1 + Option.value ~default:0 (Hashtbl.find_opt counts owner))
      | None -> ())
    keys;
  List.iter
    (fun node ->
      let n = Option.value ~default:0 (Hashtbl.find_opt counts node) in
      (* Fair share is 1000; 64 vnodes keep every node within a loose
         band around it — the property that matters is that no node is
         starved or doubly loaded. *)
      Alcotest.(check bool)
        (Printf.sprintf "%s owns a fair share (%d of 3000)" node n)
        true
        (n > 500 && n < 1700))
    nodes;
  Alcotest.(check bool) "empty ring has no owner" true
    (Router.Ring.lookup (Router.Ring.create ~nodes:[] ~vnodes:64) "k" = None)

let test_ring_minimal_remap () =
  let keys = ring_keys 3000 in
  let before = Router.Ring.create ~nodes:[ "a"; "b"; "c" ] ~vnodes:64 in
  let after = Router.Ring.create ~nodes:[ "a"; "b" ] ~vnodes:64 in
  let moved = ref 0 and owned_by_c = ref 0 in
  List.iter
    (fun k ->
      match (Router.Ring.lookup before k, Router.Ring.lookup after k) with
      | Some o1, Some o2 ->
        if o1 = "c" then begin
          incr owned_by_c;
          (* its keys must land on a survivor *)
          Alcotest.(check bool) "c's keys remap to a live node" true
            (o2 = "a" || o2 = "b")
        end
        else
          (* the defining property: removing [c] moves ONLY c's keys *)
          Alcotest.(check string) ("unaffected key " ^ k ^ " stays put") o1 o2;
        if o1 <> o2 then incr moved
      | _ -> Alcotest.fail "lookup on a non-empty ring")
    keys;
  Alcotest.(check int) "moved keys are exactly c's keys" !owned_by_c !moved;
  Alcotest.(check bool) "c owned something to begin with" true
    (!owned_by_c > 0)

(* --- the fleet router, end to end --- *)

let with_fleet ?(shards = 2) f =
  let mk_shard () =
    let cfg =
      {
        Server.socket_path = fresh_socket ();
        workers = 1;
        queue_limit = 16;
        cache_capacity = 8;
        job_timeout_ms = 30_000;
        max_retries = 1;
        store_dir = None;
        store_max_bytes = 16 * 1024 * 1024;
      }
    in
    (cfg.Server.socket_path, Server.start cfg)
  in
  let backends = List.init shards (fun _ -> mk_shard ()) in
  let rcfg =
    Router.default_config ~socket_path:(fresh_socket ())
      ~shard_sockets:(List.map fst backends)
  in
  let router = Router.start rcfg in
  Fun.protect
    ~finally:(fun () ->
      Router.stop router;
      List.iter (fun (_, srv) -> Server.stop srv) backends)
    (fun () ->
      let deadline = Unix.gettimeofday () +. 5.0 in
      while
        Router.live_count router < shards && Unix.gettimeofday () < deadline
      do
        Thread.delay 0.01
      done;
      Alcotest.(check int) "all shards connected" shards
        (Router.live_count router);
      f rcfg.Router.socket_path router (List.map snd backends))

let jget_path j path' =
  match
    List.fold_left
      (fun acc k -> Option.bind acc (Json.member k))
      (Some j) path'
  with
  | Some v -> v
  | None -> Alcotest.failf "missing %s" (String.concat "." path')

let jint_path j path' =
  match Json.to_int (jget_path j path') with
  | Some i -> i
  | None -> Alcotest.failf "%s is not an int" (String.concat "." path')

let test_router_end_to_end () =
  with_fleet ~shards:2 @@ fun path router backends ->
  let expected_pcr =
    match Engine.plan (spec_of "pcr") with
    | Ok o -> o
    | Error m -> Alcotest.fail m
  in
  Client.with_client path @@ fun c ->
  (match Client.request c Protocol.Ping with
  | Ok Protocol.Pong -> ()
  | _ -> Alcotest.fail "ping through the router");
  (* Plans routed through the fleet are byte-identical to one-shot
     runs — the router forwards raw frames, so this is structural. *)
  let cached1, _, o1 = submit_ok c (spec_of "pcr") in
  Alcotest.(check bool) "first submit computes" false cached1;
  Alcotest.(check string) "routed plan = one-shot plan" expected_pcr o1;
  (* Same digest, same shard: the repeat hits that shard's cache. *)
  let cached2, _, o2 = submit_ok c (spec_of "pcr") in
  Alcotest.(check bool) "repeat through the ring hits" true cached2;
  Alcotest.(check string) "cached routed bytes identical" expected_pcr o2;
  let _ = submit_ok c (spec_of "ivd") in
  (* Fleet-merged stats: the router's own section plus field-wise sums
     of the shard snapshots. *)
  (match Client.request c Protocol.Stats with
  | Ok (Protocol.Stats_reply j) ->
    Alcotest.(check int) "fleet reports both procs" 2
      (jint_path j [ "fleet"; "procs_total" ]);
    Alcotest.(check int) "both procs live" 2
      (jint_path j [ "fleet"; "procs_live" ]);
    Alcotest.(check bool) "submits were forwarded" true
      (jint_path j [ "fleet"; "forwarded" ] >= 3);
    Alcotest.(check int) "merged submit tally" 3
      (jint_path j [ "requests"; "submitted" ]);
    Alcotest.(check int) "merged cache-hit tally" 1
      (jint_path j [ "cache"; "hits" ]);
    (match Json.to_list (jget_path j [ "procs" ]) with
    | Some procs ->
      Alcotest.(check int) "one row per shard process" 2 (List.length procs);
      let sum =
        List.fold_left
          (fun acc p -> acc + jint_path p [ "stats"; "requests"; "submitted" ])
          0 procs
      in
      Alcotest.(check int) "per-proc rows sum to the merged tally" 3 sum
    | None -> Alcotest.fail "procs is not an array")
  | _ -> Alcotest.fail "stats through the router");
  (* Fleet-merged metrics: parse the exposition, check the router's own
     families and that merged shard counters carry the fleet totals. *)
  (match Client.request c Protocol.Metrics with
  | Ok (Protocol.Metrics_reply text) ->
    let samples, types = parse_exposition text in
    let get series =
      match Hashtbl.find_opt samples series with
      | Some v -> v
      | None -> Alcotest.failf "missing series %S" series
    in
    Alcotest.(check bool) "router families typed" true
      (Hashtbl.mem types "pdw_router_forwarded_total");
    Alcotest.(check (float 0.)) "fleet size gauge" 2.0 (get "pdw_fleet_procs");
    Alcotest.(check (float 0.)) "live gauge" 2.0 (get "pdw_fleet_procs_live");
    Alcotest.(check (float 0.)) "merged submitted counter" 3.0
      (get "pdw_requests_submitted_total");
    (* per-shard uptimes don't add; the merge must drop them *)
    Alcotest.(check bool) "per-shard uptime dropped from the merge" false
      (Hashtbl.mem samples "pdw_uptime_seconds")
  | _ -> Alcotest.fail "metrics through the router");
  (* Kill one shard out from under the fleet: queued work is retried on
     the survivor and later submits keep answering — zero errors. *)
  (match backends with
  | first :: _ -> Server.stop first
  | [] -> Alcotest.fail "no backends");
  let deadline = Unix.gettimeofday () +. 5.0 in
  while Router.live_count router > 1 && Unix.gettimeofday () < deadline do
    Thread.delay 0.01
  done;
  Alcotest.(check int) "dead shard dropped from the ring" 1
    (Router.live_count router);
  let _, _, o1' = submit_tier c (spec_of "pcr") in
  Alcotest.(check string) "re-routed plan still byte-identical" expected_pcr
    o1';
  let _, _, _ = submit_tier c (spec_of "ivd") in
  match Client.request c Protocol.Stats with
  | Ok (Protocol.Stats_reply j) ->
    Alcotest.(check int) "one proc left" 1
      (jint_path j [ "fleet"; "procs_live" ]);
    Alcotest.(check bool) "the death was re-rung" true
      (jint_path j [ "fleet"; "rerings" ] >= 1)
  | _ -> Alcotest.fail "stats after the kill"

(* A seeded, verified campaign through the router: every plan reply is
   checked byte-for-byte against a locally computed outcome, and the
   summary carries the seed it can be replayed with. *)
let test_router_loadgen_seeded () =
  with_fleet ~shards:2 @@ fun path _router _backends ->
  let specs = [ spec_of "pcr"; spec_of "ivd" ] in
  let s =
    Loadgen.run ~socket_path:path ~clients:4 ~per_client:4 ~warmup:4
      ~pipeline:2 ~seed:7 ~verify:true specs
  in
  Alcotest.(check int) "all requests answered with plans" s.Loadgen.requests
    s.Loadgen.plans;
  Alcotest.(check int) "no mismatches through the fleet" 0
    s.Loadgen.mismatches;
  Alcotest.(check int) "no errors through the fleet" 0 s.Loadgen.errors;
  Alcotest.(check int) "no shed" 0 s.Loadgen.shed;
  Alcotest.(check (option int)) "summary carries the seed" (Some 7)
    s.Loadgen.seed

(* --- seeded load generation is reproducible --- *)

let test_loadgen_spec_indices () =
  let a = Loadgen.spec_indices ~seed:42 ~client:0 ~nspecs:3 ~warmup:5 ~count:20 in
  let b = Loadgen.spec_indices ~seed:42 ~client:0 ~nspecs:3 ~warmup:5 ~count:20 in
  Alcotest.(check (array int)) "same seed and client, same stream" a b;
  Alcotest.(check int) "length covers warm-up and measured" 25
    (Array.length a);
  Array.iter
    (fun i ->
      Alcotest.(check bool) "index in range" true (i >= 0 && i < 3))
    a;
  let other_client =
    Loadgen.spec_indices ~seed:42 ~client:1 ~nspecs:3 ~warmup:5 ~count:20
  in
  Alcotest.(check bool) "clients draw split, distinct streams" true
    (a <> other_client);
  let other_seed =
    Loadgen.spec_indices ~seed:43 ~client:0 ~nspecs:3 ~warmup:5 ~count:20
  in
  Alcotest.(check bool) "the seed changes the stream" true (a <> other_seed)

let () =
  Alcotest.run "pdw_service"
    [
      ( "wire",
        [
          Alcotest.test_case "frame round-trips" `Quick test_wire_roundtrip;
          Alcotest.test_case "clean EOF" `Quick test_wire_eof;
          Alcotest.test_case "malformed frames" `Quick test_wire_bad_header;
          Alcotest.test_case "batched write, buffered read" `Quick
            test_wire_buffered_batch;
          Alcotest.test_case "has_frame sees only the buffer" `Quick
            test_wire_has_frame;
          Alcotest.test_case "split at every byte boundary" `Quick
            test_wire_split_every_byte;
          Alcotest.test_case "truncated final frame" `Quick
            test_wire_truncated_tail;
          QCheck_alcotest.to_alcotest prop_wire_chunking_independent;
        ] );
      ( "protocol",
        [
          Alcotest.test_case "request round-trips" `Quick
            test_protocol_request_roundtrip;
          Alcotest.test_case "digest canonicalization" `Quick
            test_protocol_digest;
          Alcotest.test_case "unknown config field" `Quick
            test_protocol_rejects_unknown_config;
          Alcotest.test_case "storage digest separation" `Quick
            test_protocol_storage_digest;
          Alcotest.test_case "malformed park rejected" `Quick
            test_protocol_rejects_bad_park;
          Alcotest.test_case "engine applies the park set" `Quick
            test_engine_park;
        ] );
      ( "plan cache",
        [
          Alcotest.test_case "LRU eviction and promotion" `Quick test_cache_lru;
          Alcotest.test_case "refresh in place" `Quick test_cache_refresh;
          Alcotest.test_case "sharded, hammered by domains" `Slow
            test_cache_sharded_stress;
          Alcotest.test_case "two tiers: promotion and write-through" `Quick
            test_cache_tiers;
        ] );
      ( "plan store",
        [
          Alcotest.test_case "roundtrip, reopen, non-hex refused" `Quick
            test_store_roundtrip;
          Alcotest.test_case "corruption detected and deleted" `Quick
            test_store_corrupt;
          Alcotest.test_case "byte-bounded LRU eviction" `Quick
            test_store_eviction;
        ] );
      ( "admission",
        [ Alcotest.test_case "bounded slots" `Quick test_admission ] );
      ( "pool",
        [
          Alcotest.test_case "dedicated per-worker queues" `Quick
            test_pool_dedicated;
          Alcotest.test_case "round-robin submit" `Quick test_pool_round_robin;
        ] );
      ( "daemon",
        [
          Alcotest.test_case "plan, cache, byte-identity" `Quick
            test_server_plan_and_cache;
          Alcotest.test_case "ping, version, stats" `Quick
            test_server_simple_ops;
          Alcotest.test_case "bad requests answered" `Quick
            test_server_bad_requests;
          Alcotest.test_case "explicit shed at the limit" `Quick
            test_server_shed;
          Alcotest.test_case "per-request timeout" `Quick test_server_timeout;
          Alcotest.test_case "concurrent loadgen, verified" `Slow
            test_server_loadgen;
          Alcotest.test_case "pipelined batch, ordered replies" `Quick
            test_server_pipelined;
          Alcotest.test_case "huge pipelined batch, chunked" `Slow
            test_server_pipelined_huge_batch;
          Alcotest.test_case "loadgen no-cache planner workout" `Slow
            test_server_loadgen_no_cache;
          Alcotest.test_case "stats consistent under load" `Slow
            test_server_stats_consistency;
          Alcotest.test_case "loadgen warm-up excluded" `Slow
            test_server_loadgen_warmup;
          Alcotest.test_case "metrics exposition parses and adds up" `Quick
            test_server_metrics;
          Alcotest.test_case "telemetry snapshots and the request ring" `Quick
            test_server_telemetry_and_ring;
          Alcotest.test_case "shutdown request" `Quick
            test_server_shutdown_request;
          Alcotest.test_case "version handshake" `Quick test_server_hello;
          Alcotest.test_case "warm-store restart serves from disk" `Slow
            test_server_store_restart;
        ] );
      ( "ring",
        [
          Alcotest.test_case "deterministic and balanced" `Quick
            test_ring_determinism_and_balance;
          Alcotest.test_case "node removal moves only its keys" `Quick
            test_ring_minimal_remap;
        ] );
      ( "router",
        [
          Alcotest.test_case "routes, merges, survives a shard kill" `Slow
            test_router_end_to_end;
          Alcotest.test_case "seeded verified campaign through the fleet"
            `Slow test_router_loadgen_seeded;
        ] );
      ( "loadgen",
        [
          Alcotest.test_case "seeded spec streams are reproducible" `Quick
            test_loadgen_spec_indices;
        ] );
    ]
