(* Tests for the pdw_wash core library: contamination replay, the
   Type 1/2/3 necessity analysis of Section II-A, requirement grouping,
   removal integration, wash-path construction (heuristic and exact ILP)
   and the PDW / DAWO planners end to end. *)

module Coord = Pdw_geometry.Coord
module Gpath = Pdw_geometry.Gpath
module Fluid = Pdw_biochip.Fluid
module Port = Pdw_biochip.Port
module Layout = Pdw_biochip.Layout
module Layout_builder = Pdw_biochip.Layout_builder
module Operation = Pdw_assay.Operation
module Sequencing_graph = Pdw_assay.Sequencing_graph
module Benchmarks = Pdw_assay.Benchmarks
module Task = Pdw_synth.Task
module Schedule = Pdw_synth.Schedule
module Scheduler = Pdw_synth.Scheduler
module Synthesis = Pdw_synth.Synthesis
module Contamination = Pdw_wash.Contamination
module Necessity = Pdw_wash.Necessity
module Wash_target = Pdw_wash.Wash_target
module Integration = Pdw_wash.Integration
module Wash_path_search = Pdw_wash.Wash_path_search
module Wash_path_ilp = Pdw_wash.Wash_path_ilp
module Wash_plan = Pdw_wash.Wash_plan
module Pdw = Pdw_wash.Pdw
module Dawo = Pdw_wash.Dawo
module Metrics = Pdw_wash.Metrics

let fig2 = Layout_builder.fig2_layout

(* A tiny two-op assay on the fig2 chip whose baseline schedule is easy
   to reason about: o1 mixes a+b, o2 heats the result. *)
let tiny_synthesis () =
  let node id kind duration inputs : Sequencing_graph.node =
    { op = Operation.make ~id ~kind ~duration (); inputs }
  in
  let reagent n = Sequencing_graph.From_reagent (Fluid.reagent n) in
  let graph =
    Sequencing_graph.make ~name:"tiny"
      [
        node 0 Operation.Mix 2 [ reagent "a"; reagent "b" ];
        node 1 Operation.Heat 3 [ Sequencing_graph.From_op 0 ];
      ]
  in
  let b =
    {
      Benchmarks.graph;
      device_kinds = [ Pdw_biochip.Device.Mixer; Pdw_biochip.Device.Heater ];
    }
  in
  Synthesis.synthesize ~layout:(fig2 ()) b

(* --- contamination --- *)

let test_contamination_baseline_has_timelines () =
  let s = tiny_synthesis () in
  let c = Contamination.analyze s.Synthesis.schedule in
  Alcotest.(check bool) "some cells touched" true
    (List.length (Contamination.cells c) > 0);
  (* The mixer device cell must appear (ops ran on it). *)
  let mixer = Option.get (Layout.device_by_name s.Synthesis.layout "mixer") in
  let anchor =
    Layout.device_anchor s.Synthesis.layout mixer.Pdw_biochip.Device.id
  in
  Alcotest.(check bool) "mixer timeline nonempty" true
    (Contamination.touches c anchor <> [])

let test_contamination_timelines_sorted () =
  let s = Synthesis.synthesize (Benchmarks.pcr ()) in
  let c = Contamination.analyze s.Synthesis.schedule in
  List.iter
    (fun cell ->
      let timeline = Contamination.touches c cell in
      let rec sorted = function
        | a :: (b :: _ as rest) ->
          a.Contamination.start <= b.Contamination.start && sorted rest
        | [ _ ] | [] -> true
      in
      Alcotest.(check bool) "sorted" true (sorted timeline))
    (Contamination.cells c)

let test_contamination_ports_excluded () =
  let s = tiny_synthesis () in
  let c = Contamination.analyze s.Synthesis.schedule in
  List.iter
    (fun (p : Port.t) ->
      Alcotest.(check (list string)) "port timeline empty" []
        (List.map
           (fun _ -> "touch")
           (Contamination.touches c p.Port.position)))
    (Layout.ports s.Synthesis.layout)

let test_baseline_has_violations () =
  (* Without washes, the motivating benchmark must show contaminated
     uses — otherwise there is nothing for PDW to do. *)
  let s =
    Synthesis.synthesize ~layout:(fig2 ()) (Benchmarks.motivating ())
  in
  let c = Contamination.analyze s.Synthesis.schedule in
  Alcotest.(check bool) "baseline dirty" true
    (Contamination.violations c <> [])

(* --- necessity: the three types of Section II-A --- *)

(* Hand-built timelines exercise the classifier directly via a real
   schedule: we synthesize the motivating assay and check the verdict
   distribution is sane. *)
let test_necessity_verdicts_present () =
  let s =
    Synthesis.synthesize ~layout:(fig2 ()) (Benchmarks.motivating ())
  in
  let report = Necessity.analyze (Contamination.analyze s.Synthesis.schedule) in
  let needed, t1, t2, t3, _washed = Necessity.counts report in
  Alcotest.(check bool) "some washes needed" true (needed > 0);
  Alcotest.(check bool) "type1 savings exist" true (t1 > 0);
  Alcotest.(check bool) "type2 savings exist" true (t2 > 0);
  Alcotest.(check bool) "type3 savings exist" true (t3 > 0)

let test_necessity_requirements_subset () =
  let s = Synthesis.synthesize (Benchmarks.ivd ()) in
  let report = Necessity.analyze (Contamination.analyze s.Synthesis.schedule) in
  let reqs = Necessity.requirements report in
  Alcotest.(check bool) "requirements are Needed events" true
    (List.for_all (fun e -> e.Necessity.verdict = Necessity.Needed) reqs);
  (* Every requirement has a next use (by definition of Needed). *)
  Alcotest.(check bool) "requirements have uses" true
    (List.for_all (fun e -> e.Necessity.next_use <> None) reqs)

let test_dawo_demands_superset () =
  (* DAWO lacks necessity analysis, so it never demands fewer washes than
     PDW's requirements on the same schedule. *)
  List.iter
    (fun (name, b) ->
      let s = Synthesis.synthesize b in
      let report =
        Necessity.analyze (Contamination.analyze s.Synthesis.schedule)
      in
      Alcotest.(check bool) (name ^ " dawo >= pdw") true
        (List.length (Necessity.dawo_demands report)
        >= List.length (Necessity.requirements report)))
    (Benchmarks.all ())

(* --- grouping --- *)

let test_grouping_by_use_covers_all () =
  let s = Synthesis.synthesize (Benchmarks.pcr ()) in
  let report = Necessity.analyze (Contamination.analyze s.Synthesis.schedule) in
  let reqs = Necessity.requirements report in
  let groups = Wash_target.group_by_use reqs in
  let all_cells =
    List.fold_left
      (fun acc (e : Necessity.event) -> Coord.Set.add e.Necessity.cell acc)
      Coord.Set.empty reqs
  in
  let grouped_cells =
    List.fold_left
      (fun acc g -> Coord.Set.union acc g.Wash_target.targets)
      Coord.Set.empty groups
  in
  Alcotest.(check bool) "all requirement cells grouped" true
    (Coord.Set.subset all_cells grouped_cells)

let test_grouping_merged_not_more_groups () =
  let s = Synthesis.synthesize (Benchmarks.ivd ()) in
  let report = Necessity.analyze (Contamination.analyze s.Synthesis.schedule) in
  let reqs = Necessity.requirements report in
  let by_use = Wash_target.group_by_use reqs in
  let merged = Wash_target.group reqs in
  Alcotest.(check bool) "merging reduces or keeps group count" true
    (List.length merged <= List.length by_use)

let test_group_windows_consistent () =
  let s = Synthesis.synthesize (Benchmarks.protein_split ()) in
  let report = Necessity.analyze (Contamination.analyze s.Synthesis.schedule) in
  (* Contamination always happens no later than the use it threatens;
     equality means the wash must delay the use, which rescheduling
     handles via precedence. *)
  List.iter
    (fun g ->
      Alcotest.(check bool) "release <= deadline" true
        (g.Wash_target.release <= g.Wash_target.deadline))
    (Wash_target.group (Necessity.requirements report))

(* --- wash path search --- *)

let test_wash_path_covers_and_terminates () =
  let s =
    Synthesis.synthesize ~layout:(fig2 ()) (Benchmarks.motivating ())
  in
  let schedule = s.Synthesis.schedule in
  let report = Necessity.analyze (Contamination.analyze schedule) in
  let groups = Wash_target.group (Necessity.requirements report) in
  Alcotest.(check bool) "groups exist" true (groups <> []);
  List.iter
    (fun g ->
      match
        Wash_path_search.find ~layout:s.Synthesis.layout ~schedule g
      with
      | None -> () (* split handled by the planner *)
      | Some (path, fp, wp) ->
        let fport = Layout.port s.Synthesis.layout fp in
        let wport = Layout.port s.Synthesis.layout wp in
        Alcotest.(check bool) "flow -> waste" true
          (Port.is_flow fport && Port.is_waste wport);
        Alcotest.(check bool) "covers targets" true
          (Gpath.covers path g.Wash_target.targets))
    groups

let test_busy_cells_window () =
  let s = tiny_synthesis () in
  let schedule = s.Synthesis.schedule in
  let full = (0, Schedule.makespan schedule) in
  let busy = Wash_path_search.busy_cells schedule ~window:full in
  Alcotest.(check bool) "everything busy sometime" true
    (Coord.Set.cardinal busy > 0);
  let empty_window = (10_000, 10_001) in
  Alcotest.(check int) "nothing busy after the end" 0
    (Coord.Set.cardinal (Wash_path_search.busy_cells schedule ~window:empty_window))

(* --- exact ILP wash paths --- *)

let test_ilp_path_matches_structure () =
  let s =
    Synthesis.synthesize ~layout:(fig2 ()) (Benchmarks.motivating ())
  in
  let schedule = s.Synthesis.schedule in
  let report = Necessity.analyze (Contamination.analyze schedule) in
  match Wash_target.group (Necessity.requirements report) with
  | [] -> Alcotest.fail "expected at least one group"
  | g :: _ -> (
    match
      Wash_path_ilp.find
        ~config:{ Pdw_lp.Ilp.default_config with time_limit = 20.0 }
        ~layout:s.Synthesis.layout ~schedule ~conflict_aware:false g
    with
    | None -> Alcotest.fail "ILP found no wash path"
    | Some (path, fp, wp) ->
      let fport = Layout.port s.Synthesis.layout fp in
      let wport = Layout.port s.Synthesis.layout wp in
      Alcotest.(check bool) "flow -> waste" true
        (Port.is_flow fport && Port.is_waste wport);
      Alcotest.(check bool) "covers targets" true
        (Gpath.covers path g.Wash_target.targets);
      (* Exactness: never longer than the heuristic on the same group. *)
      (match Wash_path_search.find ~conflict_aware:false
               ~layout:s.Synthesis.layout ~schedule g with
      | Some (hpath, _, _) ->
        Alcotest.(check bool) "ILP <= heuristic length" true
          (Gpath.length path <= Gpath.length hpath)
      | None -> ()))

(* --- integration (Eq. 21) --- *)

let test_integration_merges_compatible_removal () =
  let s =
    Synthesis.synthesize ~layout:(fig2 ()) (Benchmarks.motivating ())
  in
  let schedule = s.Synthesis.schedule in
  let report = Necessity.analyze (Contamination.analyze schedule) in
  let groups = Wash_target.group (Necessity.requirements report) in
  let removals = List.filter Task.is_removal s.Synthesis.tasks in
  let merged_groups, standalone =
    Integration.merge ~schedule ~removals groups
  in
  let merged_count =
    List.fold_left
      (fun acc g -> acc + List.length g.Wash_target.merged_removals)
      0 merged_groups
  in
  Alcotest.(check int) "merged + standalone = removals"
    (List.length removals)
    (merged_count + List.length standalone);
  (* A merged group's targets must include the removal's excess cells. *)
  List.iter
    (fun g ->
      List.iter
        (fun (t : Task.t) ->
          match t.Task.purpose with
          | Task.Removal { excess; _ } ->
            Alcotest.(check bool) "excess absorbed into targets" true
              (Coord.Set.subset excess g.Wash_target.targets)
          | Task.Transport _ | Task.Disposal _ | Task.Park _ | Task.Fetch _
          | Task.Wash _ ->
            Alcotest.fail "non-removal merged")
        g.Wash_target.merged_removals)
    merged_groups

(* --- end-to-end planners --- *)

let all_with_motivating () =
  ("Motivating", Benchmarks.motivating (), Some (fig2 ()))
  :: List.map (fun (n, b) -> (n, b, None)) (Benchmarks.all ())

(* The three end-to-end planner cases below used to synthesize and
   optimize the full benchmark set each — three times over.  Synthesize
   once, optimize once per planner (fanning out over a domain pool), and
   share the outcomes lazily so a filtered test run that skips them pays
   nothing. *)
let shared_synths =
  lazy
    (Pdw_wash.Domain_pool.with_pool (fun pool ->
         Pdw_wash.Domain_pool.map pool
           (fun (name, b, layout) -> (name, Synthesis.synthesize ?layout b))
           (all_with_motivating ())))

let optimize_all planner =
  Pdw_wash.Domain_pool.with_pool (fun pool ->
      Pdw_wash.Domain_pool.map pool
        (fun (name, s) -> (name, planner s))
        (Lazy.force shared_synths))

let shared_pdw = lazy (optimize_all (fun s -> Pdw.optimize s))
let shared_dawo = lazy (optimize_all (fun s -> Dawo.optimize s))

let outcome_clean name (o : Wash_plan.outcome) =
  Alcotest.(check bool) (name ^ " converged") true o.Wash_plan.converged;
  Alcotest.(check (list string))
    (name ^ " schedule valid")
    []
    (Schedule.violations o.Wash_plan.schedule);
  Alcotest.(check int)
    (name ^ " contamination-free")
    0
    (List.length
       (Contamination.violations (Contamination.analyze o.Wash_plan.schedule)))

let test_pdw_end_to_end () =
  List.iter
    (fun (name, o) -> outcome_clean (name ^ " pdw") o)
    (Lazy.force shared_pdw)

let test_dawo_end_to_end () =
  List.iter
    (fun (name, o) -> outcome_clean (name ^ " dawo") o)
    (Lazy.force shared_dawo)

let test_pdw_dominates_dawo () =
  List.iter2
    (fun (name, (pdw : Wash_plan.outcome)) (_, (dawo : Wash_plan.outcome)) ->
      let pdw = pdw.Wash_plan.metrics and dawo = dawo.Wash_plan.metrics in
      Alcotest.(check bool) (name ^ " N_wash") true
        (pdw.Metrics.n_wash <= dawo.Metrics.n_wash);
      Alcotest.(check bool) (name ^ " T_assay") true
        (pdw.Metrics.t_assay <= dawo.Metrics.t_assay))
    (Lazy.force shared_pdw) (Lazy.force shared_dawo)

let test_washes_before_their_uses () =
  (* Each wash's targets must be clean at every subsequent sensitive use:
     implied by contamination-free check, but verify the wash tasks also
     run inside the schedule makespan and have positive duration. *)
  let s =
    Synthesis.synthesize ~layout:(fig2 ()) (Benchmarks.motivating ())
  in
  let o = Pdw.optimize s in
  Alcotest.(check bool) "pdw inserted washes" true
    (Schedule.wash_runs o.Wash_plan.schedule <> []);
  List.iter
    (fun (task, start, finish) ->
      Alcotest.(check bool) "positive duration" true (finish > start);
      Alcotest.(check bool) "covers declared targets" true
        (match task.Task.purpose with
        | Task.Wash { targets; _ } -> Gpath.covers task.Task.path targets
        | Task.Transport _ | Task.Removal _ | Task.Disposal _ | Task.Park _
        | Task.Fetch _ ->
          false))
    (Schedule.wash_runs o.Wash_plan.schedule)

let test_integration_reduces_tasks () =
  (* With integration on, some removals are absorbed: the final schedule
     has fewer standalone removals than the baseline.  (PCR rather than
     the motivating bus chip: there every tentative merge fails the
     Eq. (21) coverage/length check, and integration correctly declines.) *)
  let s = Synthesis.synthesize (Benchmarks.pcr ()) in
  let o = Pdw.optimize s in
  let removals_in schedule =
    List.length
      (List.filter (fun (t, _, _) -> Task.is_removal t) (Schedule.task_runs schedule))
  in
  Alcotest.(check bool) "some removal merged" true
    (removals_in o.Wash_plan.schedule < removals_in o.Wash_plan.baseline);
  (* Every absorbed removal's excess cells are covered by its wash. *)
  List.iter
    (fun (wash : Task.t) ->
      match wash.Task.purpose with
      | Task.Wash { merged_removals; targets } ->
        List.iter
          (fun id ->
            match
              List.find_opt (fun (t : Task.t) -> t.Task.id = id)
                s.Synthesis.tasks
            with
            | Some { Task.purpose = Task.Removal { excess; _ }; _ } ->
              Alcotest.(check bool) "excess in targets" true
                (Coord.Set.subset excess targets);
              Alcotest.(check bool) "wash path covers excess" true
                (Gpath.covers wash.Task.path excess)
            | Some _ | None -> Alcotest.fail "merged id is not a removal")
          merged_removals
      | Task.Transport _ | Task.Removal _ | Task.Disposal _ | Task.Park _
      | Task.Fetch _ ->
        ())
    o.Wash_plan.washes

let test_ablation_necessity () =
  (* Turning necessity analysis off cannot reduce the number of washes. *)
  let s = Synthesis.synthesize (Benchmarks.pcr ()) in
  let with_n = Pdw.optimize s in
  let without_n =
    Pdw.optimize ~config:{ Pdw.default_config with necessity = false } s
  in
  Alcotest.(check bool) "necessity saves washes" true
    (with_n.Wash_plan.metrics.Metrics.n_wash
    <= without_n.Wash_plan.metrics.Metrics.n_wash)

let test_ablation_integration () =
  let s = Synthesis.synthesize (Benchmarks.pcr ()) in
  let off = Pdw.optimize ~config:{ Pdw.default_config with integrate = false } s in
  outcome_clean "integration-off still correct" off

let test_metrics_fields () =
  let s =
    Synthesis.synthesize ~layout:(fig2 ()) (Benchmarks.motivating ())
  in
  let o = Pdw.optimize s in
  let m = o.Wash_plan.metrics in
  Alcotest.(check int) "n_wash matches schedule"
    (List.length (Schedule.wash_runs o.Wash_plan.schedule))
    m.Metrics.n_wash;
  Alcotest.(check bool) "delay = assay - baseline" true
    (m.Metrics.t_delay
    = m.Metrics.t_assay - Schedule.assay_completion o.Wash_plan.baseline);
  Alcotest.(check bool) "objective positive" true (m.Metrics.objective > 0.0);
  Alcotest.(check bool) "wash time positive" true
    (m.Metrics.total_wash_time > 0)

(* --- exact scheduling MILP (Eqs. 1-8, 16-22) --- *)

module Schedule_ilp = Pdw_wash.Schedule_ilp

let tiny_benchmark () =
  let node id kind duration inputs : Sequencing_graph.node =
    { op = Operation.make ~id ~kind ~duration (); inputs }
  in
  let reagent n = Sequencing_graph.From_reagent (Fluid.reagent n) in
  {
    Benchmarks.graph =
      Sequencing_graph.make ~name:"tiny3"
        [
          node 0 Operation.Mix 2 [ reagent "a"; reagent "b" ];
          node 1 Operation.Heat 3 [ Sequencing_graph.From_op 0 ];
          node 2 Operation.Detect 2 [ Sequencing_graph.From_op 1 ];
        ];
    device_kinds =
      Pdw_biochip.Device.[ Mixer; Heater; Detector ];
  }

let test_exact_schedule_matches_serial () =
  let s = Synthesis.synthesize (tiny_benchmark ()) in
  match Schedule_ilp.solve s ~tasks:s.Synthesis.tasks () with
  | Error e -> Alcotest.failf "exact solver failed: %s" e
  | Ok exact ->
    Alcotest.(check (list string)) "exact schedule valid" []
      (Schedule.violations exact);
    (* The exact optimum never exceeds the serial heuristic... *)
    Alcotest.(check bool) "exact <= serial" true
      (Schedule.assay_completion exact
      <= Schedule.assay_completion s.Synthesis.schedule);
    (* ...and on this instance the serial scheduler is optimal. *)
    Alcotest.(check int) "serial is optimal here"
      (Schedule.assay_completion s.Synthesis.schedule)
      (Schedule.assay_completion exact)

let test_exact_schedule_rejects_large () =
  let s = Synthesis.synthesize (Benchmarks.kinase_2 ()) in
  match Schedule_ilp.solve ~max_pairs:10 s ~tasks:s.Synthesis.tasks () with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "expected size rejection"

let prop_serial_never_beats_exact =
  QCheck2.Test.make
    ~name:"exact MILP start times never exceed the serial heuristic"
    ~count:6
    QCheck2.Gen.(int_range 0 10_000)
    (fun seed ->
      let b = Pdw_assay.Assay_gen.random ~min_ops:3 ~max_ops:4 ~seed () in
      let s = Synthesis.synthesize b in
      match
        Schedule_ilp.solve ~max_pairs:60 s ~tasks:s.Synthesis.tasks ()
      with
      | Error _ -> true (* too large or budget: nothing to compare *)
      | Ok exact ->
        Schedule.violations exact = []
        && Schedule.assay_completion exact
           <= Schedule.assay_completion s.Synthesis.schedule)

let test_batch_end_to_end () =
  (* Two PCR runs back to back: the second run's transports cross the
     first run's residues, so inter-run washes must appear and the final
     schedule must still be clean. *)
  let base = Benchmarks.pcr () in
  let graph = Sequencing_graph.repeat base.Benchmarks.graph 2 in
  let b = { base with Benchmarks.graph } in
  let s = Synthesis.synthesize b in
  let o = Pdw.optimize s in
  Alcotest.(check bool) "converged" true o.Wash_plan.converged;
  Alcotest.(check (list string)) "valid" []
    (Schedule.violations o.Wash_plan.schedule);
  let single = Pdw.optimize (Synthesis.synthesize base) in
  Alcotest.(check bool) "batching needs more washes" true
    (o.Wash_plan.metrics.Metrics.n_wash
    > single.Wash_plan.metrics.Metrics.n_wash)

(* --- properties on random assays --- *)

let prop_pdw_contamination_free =
  QCheck2.Test.make ~name:"PDW schedules are contamination-free" ~count:25
    QCheck2.Gen.(int_range 0 10_000)
    (fun seed ->
      let b = Pdw_assay.Assay_gen.random ~max_ops:7 ~seed () in
      let o = Pdw.run b in
      o.Wash_plan.converged
      && Schedule.violations o.Wash_plan.schedule = []
      && Contamination.violations
           (Contamination.analyze o.Wash_plan.schedule)
         = [])

let prop_dawo_contamination_free =
  QCheck2.Test.make ~name:"DAWO schedules are contamination-free" ~count:25
    QCheck2.Gen.(int_range 0 10_000)
    (fun seed ->
      let b = Pdw_assay.Assay_gen.random ~max_ops:7 ~seed () in
      let o = Dawo.run b in
      o.Wash_plan.converged
      && Schedule.violations o.Wash_plan.schedule = []
      && Contamination.violations
           (Contamination.analyze o.Wash_plan.schedule)
         = [])

let prop_pdw_never_more_washes =
  QCheck2.Test.make ~name:"PDW never uses more washes than DAWO" ~count:25
    QCheck2.Gen.(int_range 0 10_000)
    (fun seed ->
      let b = Pdw_assay.Assay_gen.random ~max_ops:7 ~seed () in
      let s = Synthesis.synthesize b in
      let pdw = (Pdw.optimize s).Wash_plan.metrics in
      let dawo = (Dawo.optimize s).Wash_plan.metrics in
      pdw.Metrics.n_wash <= dawo.Metrics.n_wash)

let prop_occupancy_matches_brute_force =
  (* The interval-indexed occupancy query must agree with the obvious
     fold over every schedule entry, for arbitrary (even empty or
     out-of-range) windows. *)
  let shared_pcr = lazy (Synthesis.synthesize (Benchmarks.pcr ())) in
  QCheck2.Test.make
    ~name:"occupancy window query equals brute-force fold" ~count:100
    QCheck2.Gen.(pair (int_range (-50) 400) (int_range (-50) 400))
    (fun (a, b) ->
      let schedule = (Lazy.force shared_pcr).Synthesis.schedule in
      let window = (min a b, max a b) in
      let brute =
        List.fold_left
          (fun acc entry ->
            let s = Schedule.entry_start entry
            and f = Schedule.entry_finish entry in
            let lo, hi = window in
            if s < hi && lo < f then
              Coord.Set.union acc (Schedule.entry_cells schedule entry)
            else acc)
          Coord.Set.empty (Schedule.entries schedule)
      in
      let indexed =
        Pdw_wash.Occupancy.busy
          (Pdw_wash.Occupancy.of_schedule schedule)
          ~window
      in
      Coord.Set.equal brute indexed
      && Coord.Set.equal brute
           (Wash_path_search.busy_cells schedule ~window))

let prop_wash_paths_are_port_to_port =
  QCheck2.Test.make ~name:"every wash path runs flow port -> waste port"
    ~count:25
    QCheck2.Gen.(int_range 0 10_000)
    (fun seed ->
      let b = Pdw_assay.Assay_gen.random ~max_ops:7 ~seed () in
      let o = Pdw.run b in
      let layout = o.Wash_plan.synthesis.Synthesis.layout in
      let port_kind c =
        match Layout.cell layout c with
        | Layout.Port_cell id -> Some (Layout.port layout id)
        | Layout.Blocked | Layout.Channel | Layout.Device_cell _ -> None
      in
      List.for_all
        (fun (task : Task.t) ->
          match
            ( port_kind (Gpath.source task.Task.path),
              port_kind (Gpath.target task.Task.path) )
          with
          | Some fp, Some wp -> Port.is_flow fp && Port.is_waste wp
          | (Some _ | None), (Some _ | None) -> false)
        o.Wash_plan.washes)

(* --- distributed channel storage: wash semantics --- *)

let storage_synths =
  lazy
    (List.map
       (fun (name, b) -> (name, Synthesis.synthesize b))
       (Benchmarks.storage ()))

let test_storage_pdw_end_to_end () =
  List.iter
    (fun (name, s) -> outcome_clean (name ^ " pdw") (Pdw.optimize s))
    (Lazy.force storage_synths)

let test_storage_dawo_end_to_end () =
  List.iter
    (fun (name, s) -> outcome_clean (name ^ " dawo") (Dawo.optimize s))
    (Lazy.force storage_synths)

let test_storage_pdw_dominates_dawo () =
  List.iter
    (fun (name, s) ->
      let pdw = (Pdw.optimize s).Wash_plan.metrics
      and dawo = (Dawo.optimize s).Wash_plan.metrics in
      Alcotest.(check bool) (name ^ " N_wash") true
        (pdw.Metrics.n_wash <= dawo.Metrics.n_wash))
    (Lazy.force storage_synths)

let test_parked_residue_verdicts () =
  (* A storage baseline deposits parked residue, and every parked Needed
     verdict fires the storage rule (transport residue keeps its own). *)
  let _, s = List.hd (Lazy.force storage_synths) in
  let report = Necessity.analyze (Contamination.analyze s.Synthesis.schedule) in
  let events = Necessity.events report in
  Alcotest.(check bool) "some parked residue" true
    (List.exists (fun (e : Necessity.event) -> e.Necessity.parked) events);
  List.iter
    (fun (e : Necessity.event) ->
      match e.Necessity.verdict with
      | Necessity.Needed ->
        Alcotest.(check string) "needed rule names the residue origin"
          (if e.Necessity.parked then "parked-residue-window"
           else "sensitive-incompatible-flow")
          (Necessity.rule e)
      | Necessity.Type1_unused | Necessity.Type2_same_fluid
      | Necessity.Type3_waste_only | Necessity.Washed ->
        ())
    events;
  (* The shipped assays keep storage cells off the corridors, so a
     parked Needed verdict is rare in the wild; pin the rule mapping
     directly on a handcrafted event (an incompatible sensitive flow
     crossing a vacated storage cell) so it cannot rot vacuously. *)
  let crossing : Contamination.touch =
    {
      Contamination.key = Pdw_synth.Scheduler.Key.Tsk 1;
      start = 20;
      finish = 22;
      incoming = Some (Fluid.reagent "other");
      sensitive = true;
      waste = false;
      disposal = false;
      parked = false;
      tolerates = [];
      residue_after = Some (Fluid.reagent "other");
    }
  in
  let needed parked : Necessity.event =
    {
      Necessity.cell = Coord.make 3 3;
      fluid = Fluid.reagent "stored";
      time = 10;
      source = Pdw_synth.Scheduler.Key.Tsk 0;
      parked;
      verdict = Necessity.Needed;
      next_use = Some crossing;
    }
  in
  Alcotest.(check string) "parked Needed names the storage rule"
    "parked-residue-window"
    (Necessity.rule (needed true));
  Alcotest.(check string) "transport Needed keeps its own rule"
    "sensitive-incompatible-flow"
    (Necessity.rule (needed false))

let test_storage_holds_in_occupancy () =
  (* The occupancy index must report a held storage cell busy for a
     window that lies strictly inside the hold — when no schedule entry
     covers that gap. *)
  let found =
    List.exists
      (fun (_, (s : Synthesis.t)) ->
        let schedule = s.Synthesis.schedule in
        let occ = Pdw_wash.Occupancy.of_schedule schedule in
        List.exists
          (fun (h : Schedule.hold) ->
            h.Schedule.hold_until > h.Schedule.hold_start + 2
            && Coord.Set.mem h.Schedule.hold_cell
                 (Pdw_wash.Occupancy.busy occ
                    ~window:
                      (h.Schedule.hold_start + 1, h.Schedule.hold_until - 1)))
          (Schedule.holds schedule))
      (Lazy.force storage_synths)
  in
  Alcotest.(check bool) "some hold visible to occupancy" true found

let test_occupancy_interval_edges () =
  (* Handcrafted spans probe the interval index at its half-open
     boundaries: exactly-adjacent spans share no second, zero-length
     spans behave by the same [start < hi && lo < finish] convention as
     the brute-force fold. *)
  let s = tiny_synthesis () in
  let schedule0 = s.Synthesis.schedule in
  let graph = Schedule.graph schedule0
  and layout = Schedule.layout schedule0
  and binding = Schedule.binding schedule0 in
  let a = Coord.make 1 3
  and b = Coord.make 3 3
  and z = Coord.make 5 3 in
  let entry id cells start finish =
    Schedule.Task_run
      {
        task =
          Task.make ~id
            ~purpose:(Task.Disposal { fluid = Fluid.reagent "x"; src_op = 0 })
            ~path:(Gpath.of_cells cells);
        start;
        finish;
      }
  in
  let sched =
    Schedule.make ~graph ~layout ~binding
      [ entry 0 [ a ] 2 4; entry 1 [ b ] 4 6; entry 2 [ z ] 5 5 ]
  in
  let occ = Pdw_wash.Occupancy.of_schedule sched in
  let busy w = Pdw_wash.Occupancy.busy occ ~window:w in
  (* Exactly-adjacent spans: the shared boundary second belongs to the
     later span only. *)
  Alcotest.(check bool) "[2,4) sees a only" true
    (Coord.Set.mem a (busy (2, 4)) && not (Coord.Set.mem b (busy (2, 4))));
  Alcotest.(check bool) "[4,6) sees b only" true
    (Coord.Set.mem b (busy (4, 6)) && not (Coord.Set.mem a (busy (4, 6))));
  Alcotest.(check bool) "[3,5) spans both" true
    (Coord.Set.mem a (busy (3, 5)) && Coord.Set.mem b (busy (3, 5)));
  (* Zero-width query windows overlap nothing. *)
  Alcotest.(check int) "zero-width window" 0
    (Coord.Set.cardinal (busy (4, 4)));
  (* A zero-length span is visible only to windows strictly straddling
     its instant — the same answer the brute-force fold gives. *)
  Alcotest.(check bool) "straddling window sees instant span" true
    (Coord.Set.mem z (busy (4, 6)));
  Alcotest.(check bool) "windows ending or starting at it do not" true
    ((not (Coord.Set.mem z (busy (4, 5)))) && not (Coord.Set.mem z (busy (5, 6))))

let render_plan (b : Benchmarks.t) =
  Pdw_wash.Json_export.(to_string (outcome (Pdw.run b)))

let prop_storage_inert_on_plain_specs =
  (* The inertness guarantee: pushing a storage-free spec through the
     park-marking machinery must leave the full plan byte-identical. *)
  QCheck2.Test.make
    ~name:"storage machinery is inert on storage-free specs" ~count:12
    QCheck2.Gen.(int_range 0 10_000)
    (fun seed ->
      let (b : Benchmarks.t) =
        Pdw_assay.Assay_gen.random ~max_ops:7 ~seed ()
      in
      let b' =
        {
          b with
          Benchmarks.graph = Sequencing_graph.mark_parked b.Benchmarks.graph [];
        }
      in
      String.equal (render_plan b) (render_plan b'))

let prop_parked_sinks_are_inert =
  (* A parked sink has nothing to fetch: marking every sink parked must
     not change the plan by a single byte. *)
  QCheck2.Test.make ~name:"parked sinks do not change the plan" ~count:12
    QCheck2.Gen.(int_range 0 10_000)
    (fun seed ->
      let (b : Benchmarks.t) =
        Pdw_assay.Assay_gen.random ~max_ops:7 ~seed ()
      in
      let graph = b.Benchmarks.graph in
      let parked =
        Sequencing_graph.mark_parked graph (Sequencing_graph.sinks graph)
      in
      String.equal (render_plan b)
        (render_plan { b with Benchmarks.graph = parked }))

let prop_parked_plans_are_clean =
  QCheck2.Test.make ~name:"parked random assays plan contamination-free"
    ~count:15
    QCheck2.Gen.(int_range 0 10_000)
    (fun seed ->
      let b =
        Pdw_assay.Assay_gen.random ~max_ops:7 ~park_fraction:0.4 ~seed ()
      in
      let o = Pdw.run b in
      o.Wash_plan.converged
      && Schedule.violations o.Wash_plan.schedule = []
      && Contamination.violations
           (Contamination.analyze o.Wash_plan.schedule)
         = [])

let () =
  Alcotest.run "pdw_wash"
    [
      ( "contamination",
        [
          Alcotest.test_case "timelines exist" `Quick
            test_contamination_baseline_has_timelines;
          Alcotest.test_case "timelines sorted" `Quick
            test_contamination_timelines_sorted;
          Alcotest.test_case "ports excluded" `Quick
            test_contamination_ports_excluded;
          Alcotest.test_case "baseline has violations" `Quick
            test_baseline_has_violations;
        ] );
      ( "necessity",
        [
          Alcotest.test_case "all verdicts present" `Quick
            test_necessity_verdicts_present;
          Alcotest.test_case "requirements subset" `Quick
            test_necessity_requirements_subset;
          Alcotest.test_case "DAWO demands superset" `Quick
            test_dawo_demands_superset;
        ] );
      ( "grouping",
        [
          Alcotest.test_case "by-use covers all" `Quick
            test_grouping_by_use_covers_all;
          Alcotest.test_case "merging reduces groups" `Quick
            test_grouping_merged_not_more_groups;
          Alcotest.test_case "window consistency" `Quick
            test_group_windows_consistent;
        ] );
      ( "wash paths",
        [
          Alcotest.test_case "search covers and terminates" `Quick
            test_wash_path_covers_and_terminates;
          Alcotest.test_case "busy-cell windows" `Quick
            test_busy_cells_window;
          Alcotest.test_case "exact ILP (Eqs. 12-15)" `Slow
            test_ilp_path_matches_structure;
        ] );
      ( "integration",
        [
          Alcotest.test_case "merges compatible removals" `Quick
            test_integration_merges_compatible_removal;
        ] );
      ( "exact scheduling",
        [
          Alcotest.test_case "matches serial on tiny instance" `Quick
            test_exact_schedule_matches_serial;
          Alcotest.test_case "rejects oversized models" `Quick
            test_exact_schedule_rejects_large;
        ] );
      ( "planners",
        [
          Alcotest.test_case "PDW end-to-end (all benchmarks)" `Slow
            test_pdw_end_to_end;
          Alcotest.test_case "DAWO end-to-end (all benchmarks)" `Slow
            test_dawo_end_to_end;
          Alcotest.test_case "PDW dominates DAWO" `Slow
            test_pdw_dominates_dawo;
          Alcotest.test_case "washes precede uses" `Quick
            test_washes_before_their_uses;
          Alcotest.test_case "integration absorbs removals" `Quick
            test_integration_reduces_tasks;
          Alcotest.test_case "ablation: necessity" `Quick
            test_ablation_necessity;
          Alcotest.test_case "ablation: integration off" `Quick
            test_ablation_integration;
          Alcotest.test_case "metric consistency" `Quick test_metrics_fields;
          Alcotest.test_case "batch processing" `Slow test_batch_end_to_end;
        ] );
      ( "storage",
        [
          Alcotest.test_case "PDW end-to-end (storage assays)" `Quick
            test_storage_pdw_end_to_end;
          Alcotest.test_case "DAWO end-to-end (storage assays)" `Quick
            test_storage_dawo_end_to_end;
          Alcotest.test_case "PDW dominates DAWO under storage" `Quick
            test_storage_pdw_dominates_dawo;
          Alcotest.test_case "parked-residue verdicts" `Quick
            test_parked_residue_verdicts;
          Alcotest.test_case "holds visible to occupancy" `Quick
            test_storage_holds_in_occupancy;
          Alcotest.test_case "occupancy interval edges" `Quick
            test_occupancy_interval_edges;
        ] );
      ( "properties",
        (* Deterministic property runs.  The PDW-vs-DAWO dominance
           property holds for the paper's benchmarks and statistically
           on random assays, but both planners are heuristics and a few
           generator seeds (87, 116, ... — about 0.7% of seeds, also
           failing on the unoptimized planner) produce assays where
           PDW's grouping loses a wash to DAWO.  A fixed state keeps the
           suite reproducible; set QCHECK_SEED to explore. *)
        let rand =
          let seed =
            match Sys.getenv_opt "QCHECK_SEED" with
            | Some s -> ( try int_of_string s with Failure _ -> 42)
            | None -> 42
          in
          Random.State.make [| seed |]
        in
        List.map
          (QCheck_alcotest.to_alcotest ~rand)
          [
            prop_serial_never_beats_exact;
            prop_pdw_contamination_free;
            prop_dawo_contamination_free;
            prop_pdw_never_more_washes;
            prop_occupancy_matches_brute_force;
            prop_wash_paths_are_port_to_port;
            prop_storage_inert_on_plain_specs;
            prop_parked_sinks_are_inert;
            prop_parked_plans_are_clean;
          ] );
    ]
