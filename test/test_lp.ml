(* Unit and property tests for the pdw_lp MILP substrate: simplex against
   hand-solved LPs, ILP against exhaustive enumeration, model-layer
   helpers, and lazy cuts. *)

module Lin_expr = Pdw_lp.Lin_expr
module Lp_problem = Pdw_lp.Lp_problem
module Simplex = Pdw_lp.Simplex
module Ilp = Pdw_lp.Ilp
module Model = Pdw_lp.Model
module Brute = Pdw_lp.Brute

let bounds ?(lb = 0.0) ?ub () : Lp_problem.bounds =
  { lower = lb; upper = ub }

let le expr rhs : Lp_problem.constr = { expr; relation = Le; rhs }
let ge expr rhs : Lp_problem.constr = { expr; relation = Ge; rhs }
let eq expr rhs : Lp_problem.constr = { expr; relation = Eq; rhs }

let expr terms =
  List.fold_left
    (fun acc (c, v) -> Lin_expr.add_term acc c v)
    Lin_expr.zero terms

let check_optimal ?(eps = 1e-6) what expected result =
  match result with
  | Simplex.Optimal { objective; _ } ->
    Alcotest.(check (float eps)) what expected objective
  | Simplex.Infeasible -> Alcotest.failf "%s: unexpectedly infeasible" what
  | Simplex.Unbounded -> Alcotest.failf "%s: unexpectedly unbounded" what

(* max 3x + 5y st x <= 4, 2y <= 12, 3x + 2y <= 18 -> x=2, y=6, obj 36
   (classic Dantzig example), minimized as -36. *)
let test_simplex_textbook () =
  let p =
    Lp_problem.make ~num_vars:2
      ~objective:(expr [ (-3.0, 0); (-5.0, 1) ])
      ~constraints:
        [
          le (expr [ (1.0, 0) ]) 4.0;
          le (expr [ (2.0, 1) ]) 12.0;
          le (expr [ (3.0, 0); (2.0, 1) ]) 18.0;
        ]
      ~var_bounds:[| bounds (); bounds () |]
  in
  match Simplex.solve p with
  | Simplex.Optimal { objective; solution } ->
    Alcotest.(check (float 1e-6)) "objective" (-36.0) objective;
    Alcotest.(check (float 1e-6)) "x" 2.0 solution.(0);
    Alcotest.(check (float 1e-6)) "y" 6.0 solution.(1)
  | _ -> Alcotest.fail "expected optimal"

let test_simplex_equality () =
  (* min x + y st x + y = 5, x - y >= 1 -> obj 5 *)
  let p =
    Lp_problem.make ~num_vars:2
      ~objective:(expr [ (1.0, 0); (1.0, 1) ])
      ~constraints:
        [ eq (expr [ (1.0, 0); (1.0, 1) ]) 5.0;
          ge (expr [ (1.0, 0); (-1.0, 1) ]) 1.0 ]
      ~var_bounds:[| bounds (); bounds () |]
  in
  check_optimal "equality-constrained" 5.0 (Simplex.solve p)

let test_simplex_infeasible () =
  let p =
    Lp_problem.make ~num_vars:1
      ~objective:(expr [ (1.0, 0) ])
      ~constraints:[ ge (expr [ (1.0, 0) ]) 3.0; le (expr [ (1.0, 0) ]) 2.0 ]
      ~var_bounds:[| bounds () |]
  in
  match Simplex.solve p with
  | Simplex.Infeasible -> ()
  | _ -> Alcotest.fail "expected infeasible"

let test_simplex_unbounded () =
  let p =
    Lp_problem.make ~num_vars:1
      ~objective:(expr [ (-1.0, 0) ])
      ~constraints:[ ge (expr [ (1.0, 0) ]) 1.0 ]
      ~var_bounds:[| bounds () |]
  in
  match Simplex.solve p with
  | Simplex.Unbounded -> ()
  | _ -> Alcotest.fail "expected unbounded"

let test_simplex_var_bounds () =
  (* min -x with 1 <= x <= 7 -> x = 7 *)
  let p =
    Lp_problem.make ~num_vars:1
      ~objective:(expr [ (-1.0, 0) ])
      ~constraints:[ le (expr [ (1.0, 0) ]) 100.0 ]
      ~var_bounds:[| bounds ~lb:1.0 ~ub:7.0 () |]
  in
  match Simplex.solve p with
  | Simplex.Optimal { objective; solution } ->
    Alcotest.(check (float 1e-6)) "objective" (-7.0) objective;
    Alcotest.(check (float 1e-6)) "x" 7.0 solution.(0)
  | _ -> Alcotest.fail "expected optimal"

let test_simplex_negative_lower_bound () =
  (* min x with -5 <= x -> x = -5 *)
  let p =
    Lp_problem.make ~num_vars:1
      ~objective:(expr [ (1.0, 0) ])
      ~constraints:[ le (expr [ (1.0, 0) ]) 10.0 ]
      ~var_bounds:[| bounds ~lb:(-5.0) () |]
  in
  check_optimal "negative lower bound" (-5.0) (Simplex.solve p)

let test_simplex_no_constraints () =
  let p =
    Lp_problem.make ~num_vars:2
      ~objective:(expr [ (1.0, 0); (-2.0, 1) ])
      ~constraints:[]
      ~var_bounds:[| bounds ~lb:3.0 (); bounds ~ub:4.0 () |]
  in
  check_optimal "bound-only problem" (3.0 -. 8.0) (Simplex.solve p)

let test_simplex_degenerate () =
  (* A degenerate LP (redundant constraints through the optimum); Bland's
     rule must still terminate. min -x - y st x + y <= 1, x <= 1, y <= 1,
     2x + 2y <= 2 -> obj -1. *)
  let p =
    Lp_problem.make ~num_vars:2
      ~objective:(expr [ (-1.0, 0); (-1.0, 1) ])
      ~constraints:
        [
          le (expr [ (1.0, 0); (1.0, 1) ]) 1.0;
          le (expr [ (1.0, 0) ]) 1.0;
          le (expr [ (1.0, 1) ]) 1.0;
          le (expr [ (2.0, 0); (2.0, 1) ]) 2.0;
        ]
      ~var_bounds:[| bounds (); bounds () |]
  in
  check_optimal "degenerate" (-1.0) (Simplex.solve p)

let test_ilp_knapsack () =
  (* max 10a + 6b + 4c st 1a + 1b + 1c <= 2 (0/1) -> a + b = 16 *)
  let p =
    Lp_problem.make ~num_vars:3
      ~objective:(expr [ (-10.0, 0); (-6.0, 1); (-4.0, 2) ])
      ~constraints:[ le (expr [ (1.0, 0); (1.0, 1); (1.0, 2) ]) 2.0 ]
      ~var_bounds:[| bounds ~ub:1.0 (); bounds ~ub:1.0 (); bounds ~ub:1.0 () |]
  in
  match Ilp.solve ~integer:[| true; true; true |] p with
  | Ilp.Optimal { objective; _ } ->
    Alcotest.(check (float 1e-6)) "knapsack" (-16.0) objective
  | r -> Alcotest.failf "expected optimal, got %a" Ilp.pp_result r

let test_ilp_fractional_relaxation () =
  (* max x + y st 2x + 2y <= 3, 0/1 vars.  LP relaxation gives 1.5; the
     integer optimum is 1. *)
  let p =
    Lp_problem.make ~num_vars:2
      ~objective:(expr [ (-1.0, 0); (-1.0, 1) ])
      ~constraints:[ le (expr [ (2.0, 0); (2.0, 1) ]) 3.0 ]
      ~var_bounds:[| bounds ~ub:1.0 (); bounds ~ub:1.0 () |]
  in
  match Ilp.solve ~integer:[| true; true |] p with
  | Ilp.Optimal { objective; _ } ->
    Alcotest.(check (float 1e-6)) "rounded down" (-1.0) objective
  | r -> Alcotest.failf "expected optimal, got %a" Ilp.pp_result r

let test_ilp_infeasible () =
  let p =
    Lp_problem.make ~num_vars:2
      ~objective:(expr [ (1.0, 0) ])
      ~constraints:
        [ eq (expr [ (2.0, 0); (2.0, 1) ]) 3.0 ]
        (* parity argument: 2(x+y) = 3 has no integer solution *)
      ~var_bounds:[| bounds ~ub:1.0 (); bounds ~ub:1.0 () |]
  in
  match Ilp.solve ~integer:[| true; true |] p with
  | Ilp.Infeasible -> ()
  | r -> Alcotest.failf "expected infeasible, got %a" Ilp.pp_result r

let test_ilp_lazy_cuts () =
  (* min -x - y, x,y binary; lazy cut forbids x = y = 1, so the optimum
     under cuts is -1. *)
  let p =
    Lp_problem.make ~num_vars:2
      ~objective:(expr [ (-1.0, 0); (-1.0, 1) ])
      ~constraints:[]
      ~var_bounds:[| bounds ~ub:1.0 (); bounds ~ub:1.0 () |]
  in
  let cuts sol =
    if sol.(0) > 0.5 && sol.(1) > 0.5 then
      [ le (expr [ (1.0, 0); (1.0, 1) ]) 1.0 ]
    else []
  in
  match Ilp.solve ~lazy_cuts:cuts ~integer:[| true; true |] p with
  | Ilp.Optimal { objective; _ } ->
    Alcotest.(check (float 1e-6)) "cut optimum" (-1.0) objective
  | r -> Alcotest.failf "expected optimal, got %a" Ilp.pp_result r

let test_model_disjunction () =
  (* Two unit-duration tasks sharing a resource: starts s0, s1 >= 0, the
     disjunction forces them apart, makespan 2 at minimum. *)
  let m = Model.create () in
  let s0 = Model.continuous m "s0" ~lb:0.0 () in
  let s1 = Model.continuous m "s1" ~lb:0.0 () in
  let makespan = Model.continuous m "makespan" ~lb:0.0 () in
  let order = Model.binary m "order" in
  let open Model in
  let e0 = v s0 +: const 1.0 and e1 = v s1 +: const 1.0 in
  add_disjunction m ~order ~a_end:e0 ~b_start:(v s1) ~a_start:(v s0)
    ~b_end:e1;
  add_ge m (v makespan) e0;
  add_ge m (v makespan) e1;
  set_objective m (v makespan);
  match Model.solve m with
  | Ok sol ->
    Alcotest.(check (float 1e-6)) "makespan" 2.0
      (Model.objective_value sol);
    Alcotest.(check bool) "not best-effort" false (Model.best_effort sol)
  | Error e -> Alcotest.failf "unexpected: %s" e

let test_model_implies () =
  (* guard = 1 forces x >= 5; minimizing x + 10*(1-guard) makes the solver
     pick guard freely; check both paths. *)
  let m = Model.create () in
  let x = Model.continuous m "x" ~lb:0.0 ~ub:10.0 () in
  let g = Model.binary m "g" in
  let open Model in
  add_implies_ge m ~guard:(v g) (v x) (const 5.0);
  add_eq m (v g) (const 1.0);
  set_objective m (v x);
  match Model.solve m with
  | Ok sol -> Alcotest.(check (float 1e-6)) "forced" 5.0 (Model.value sol x)
  | Error e -> Alcotest.failf "unexpected: %s" e

let test_brute_matches_example () =
  let p =
    Lp_problem.make ~num_vars:3
      ~objective:(expr [ (-10.0, 0); (-6.0, 1); (-4.0, 2) ])
      ~constraints:[ le (expr [ (1.0, 0); (1.0, 1); (1.0, 2) ]) 2.0 ]
      ~var_bounds:[| bounds ~ub:1.0 (); bounds ~ub:1.0 (); bounds ~ub:1.0 () |]
  in
  match Brute.solve_binary p with
  | Some (obj, _) -> Alcotest.(check (float 1e-9)) "brute" (-16.0) obj
  | None -> Alcotest.fail "expected a solution"

(* Random small 0/1 ILPs: branch and bound must match brute force. *)
let gen_binary_ilp =
  QCheck2.Gen.(
    let* nv = int_range 2 6 in
    let* nc = int_range 1 5 in
    let gen_coeff = map float_of_int (int_range (-5) 5) in
    let gen_row = list_size (return nv) gen_coeff in
    let* obj = gen_row in
    let* rows = list_size (return nc) gen_row in
    let* rhss =
      list_size (return nc) (map float_of_int (int_range (-3) 8))
    in
    let* rels = list_size (return nc) (int_range 0 2) in
    return (nv, obj, rows, rhss, rels))

let build_binary_ilp (nv, obj, rows, rhss, rels) =
  let to_expr coeffs =
    List.fold_left
      (fun (i, acc) c -> (i + 1, Lin_expr.add_term acc c i))
      (0, Lin_expr.zero) coeffs
    |> snd
  in
  let constraints =
    List.map2
      (fun (row, rhs) rel ->
        let expr = to_expr row in
        match rel with
        | 0 -> le expr rhs
        | 1 -> ge expr rhs
        | _ -> eq expr rhs)
      (List.combine rows rhss) rels
  in
  Lp_problem.make ~num_vars:nv ~objective:(to_expr obj)
    ~constraints
    ~var_bounds:(Array.init nv (fun _ -> bounds ~ub:1.0 ()))

let prop_ilp_matches_brute =
  QCheck2.Test.make ~name:"branch-and-bound matches exhaustive enumeration"
    ~count:300 gen_binary_ilp (fun spec ->
      let p = build_binary_ilp spec in
      let brute = Brute.solve_binary p in
      let ilp = Ilp.solve ~integer:(Array.make p.num_vars true) p in
      match (brute, ilp) with
      | None, Ilp.Infeasible -> true
      | Some (b, _), Ilp.Optimal { objective; _ } ->
        abs_float (b -. objective) < 1e-6
      | None, _ | Some _, _ -> false)

let prop_simplex_below_ilp =
  QCheck2.Test.make
    ~name:"LP relaxation lower-bounds the integer optimum" ~count:300
    gen_binary_ilp (fun spec ->
      let p = build_binary_ilp spec in
      match (Simplex.solve p, Brute.solve_binary p) with
      | Simplex.Optimal { objective = lp; _ }, Some (int_obj, _) ->
        lp <= int_obj +. 1e-6
      | Simplex.Infeasible, None -> true
      | Simplex.Infeasible, Some _ -> false (* LP infeasible but ILP not *)
      | Simplex.Optimal _, None -> true (* relaxation feasible, ILP not *)
      | Simplex.Unbounded, _ -> true (* bounded vars: cannot happen *))

let prop_simplex_solution_feasible =
  QCheck2.Test.make ~name:"simplex solutions satisfy their problem"
    ~count:300 gen_binary_ilp (fun spec ->
      let p = build_binary_ilp spec in
      match Simplex.solve p with
      | Simplex.Optimal { solution; _ } -> Lp_problem.satisfies p solution
      | Simplex.Infeasible | Simplex.Unbounded -> true)

let test_simplex_constant_objective () =
  (* Feasibility-only problem: constant objective, any feasible point. *)
  let p =
    Lp_problem.make ~num_vars:1
      ~objective:(Lin_expr.constant 7.0)
      ~constraints:[ ge (expr [ (1.0, 0) ]) 2.0; le (expr [ (1.0, 0) ]) 5.0 ]
      ~var_bounds:[| bounds () |]
  in
  match Simplex.solve p with
  | Simplex.Optimal { objective; solution } ->
    Alcotest.(check (float 1e-9)) "constant objective" 7.0 objective;
    Alcotest.(check bool) "feasible point" true
      (solution.(0) >= 2.0 -. 1e-9 && solution.(0) <= 5.0 +. 1e-9)
  | _ -> Alcotest.fail "expected optimal"

let test_simplex_redundant_equalities () =
  (* Two identical equalities: one row is redundant after phase 1. *)
  let p =
    Lp_problem.make ~num_vars:2
      ~objective:(expr [ (1.0, 0); (2.0, 1) ])
      ~constraints:
        [ eq (expr [ (1.0, 0); (1.0, 1) ]) 4.0;
          eq (expr [ (2.0, 0); (2.0, 1) ]) 8.0 ]
      ~var_bounds:[| bounds (); bounds () |]
  in
  check_optimal "redundant equalities" 4.0 (Simplex.solve p)

(* --- presolve --- *)

module Presolve = Pdw_lp.Presolve

let test_presolve_singleton_rows () =
  (* min -x st x <= 4 (singleton), x + y <= 10 -> presolve folds the
     singleton into x's bound and keeps one row. *)
  let p =
    Lp_problem.make ~num_vars:2
      ~objective:(expr [ (-1.0, 0) ])
      ~constraints:
        [ le (expr [ (1.0, 0) ]) 4.0;
          le (expr [ (1.0, 0); (1.0, 1) ]) 10.0 ]
      ~var_bounds:[| bounds (); bounds () |]
  in
  match Presolve.run p with
  | Presolve.Infeasible -> Alcotest.fail "not infeasible"
  | Presolve.Reduced q ->
    Alcotest.(check int) "one row removed" 1
      (Presolve.removed_constraints p q);
    (match (Simplex.solve p, Simplex.solve q) with
    | Simplex.Optimal { objective = a; _ }, Simplex.Optimal { objective = b; _ }
      ->
      Alcotest.(check (float 1e-6)) "same optimum" a b
    | _ -> Alcotest.fail "both should be optimal")

let test_presolve_detects_crossed_bounds () =
  let p =
    Lp_problem.make ~num_vars:1
      ~objective:(expr [ (1.0, 0) ])
      ~constraints:[ ge (expr [ (1.0, 0) ]) 5.0; le (expr [ (1.0, 0) ]) 2.0 ]
      ~var_bounds:[| bounds () |]
  in
  match Presolve.run p with
  | Presolve.Infeasible -> ()
  | Presolve.Reduced _ -> Alcotest.fail "expected infeasible"

let test_presolve_substitutes_fixed () =
  (* x fixed to 3 by an equality; the other row should lose its x term. *)
  let p =
    Lp_problem.make ~num_vars:2
      ~objective:(expr [ (1.0, 1) ])
      ~constraints:
        [ eq (expr [ (1.0, 0) ]) 3.0;
          ge (expr [ (1.0, 0); (1.0, 1) ]) 5.0 ]
      ~var_bounds:[| bounds (); bounds () |]
  in
  match Presolve.run p with
  | Presolve.Infeasible -> Alcotest.fail "feasible"
  | Presolve.Reduced q -> (
    match Simplex.solve q with
    | Simplex.Optimal { objective; solution } ->
      Alcotest.(check (float 1e-6)) "y = 2" 2.0 objective;
      Alcotest.(check (float 1e-6)) "x fixed" 3.0 solution.(0)
    | _ -> Alcotest.fail "expected optimal")

let prop_presolve_preserves_optimum =
  QCheck2.Test.make
    ~name:"presolve preserves feasibility and the optimal value" ~count:300
    gen_binary_ilp (fun spec ->
      let p = build_binary_ilp spec in
      match Presolve.run p with
      | Presolve.Infeasible -> Simplex.solve p = Simplex.Infeasible
      | Presolve.Reduced q -> (
        match (Simplex.solve p, Simplex.solve q) with
        | ( Simplex.Optimal { objective = a; _ },
            Simplex.Optimal { objective = b; _ } ) ->
          abs_float (a -. b) < 1e-6
        | Simplex.Infeasible, Simplex.Infeasible -> true
        | Simplex.Unbounded, Simplex.Unbounded -> true
        | _, _ -> false))

(* --- frontier heap --- *)

module Heap = Pdw_lp.Heap

let test_heap_pops_ascending () =
  let h = Heap.create () in
  let priorities = [ 5.0; 1.0; 4.0; -2.0; 3.0; 0.0; 4.0; 1.0 ] in
  List.iteri (fun i p -> Heap.add h ~priority:p i) priorities;
  Alcotest.(check int) "length" (List.length priorities) (Heap.length h);
  Alcotest.(check (option (float 0.0))) "min priority" (Some (-2.0))
    (Heap.min_priority h);
  let rec drain last acc =
    match Heap.min_priority h with
    | None -> List.rev acc
    | Some p ->
      Alcotest.(check bool) "ascending" true (p >= last);
      let v = Option.get (Heap.pop h) in
      drain p (v :: acc)
  in
  let order = drain neg_infinity [] in
  Alcotest.(check int) "all popped" (List.length priorities)
    (List.length order);
  Alcotest.(check bool) "empty after drain" true (Heap.is_empty h)

let test_heap_fifo_on_ties () =
  let h = Heap.create () in
  List.iter (fun v -> Heap.add h ~priority:7.0 v) [ 1; 2; 3; 4; 5 ];
  let popped = List.init 5 (fun _ -> Option.get (Heap.pop h)) in
  Alcotest.(check (list int)) "insertion order" [ 1; 2; 3; 4; 5 ] popped

let test_heap_interleaved () =
  let h = Heap.create () in
  Heap.add h ~priority:2.0 "b";
  Heap.add h ~priority:1.0 "a";
  Alcotest.(check (option string)) "pop a" (Some "a") (Heap.pop h);
  Heap.add h ~priority:0.5 "c";
  Heap.add h ~priority:3.0 "d";
  Alcotest.(check (option string)) "pop c" (Some "c") (Heap.pop h);
  Alcotest.(check (option string)) "pop b" (Some "b") (Heap.pop h);
  Alcotest.(check (option string)) "pop d" (Some "d") (Heap.pop h);
  Alcotest.(check (option string)) "exhausted" None (Heap.pop h)

(* --- warm starts --- *)

(* Branching tightens one variable's bounds; the parent's optimal basis
   fed to the dual simplex must land on the same optimum (status and
   objective) the cold two-phase solve finds. *)
let prop_warm_start_matches_cold =
  QCheck2.Test.make
    ~name:"warm-started child solve matches cold solve" ~count:300
    QCheck2.Gen.(pair gen_binary_ilp (pair (int_range 0 5) bool))
    (fun (spec, (branch_var, branch_up)) ->
      let p = build_binary_ilp spec in
      match Simplex.solve_keep_basis p with
      | Simplex.Optimal _, Some basis ->
        let v = branch_var mod p.num_vars in
        let child_bounds = Array.copy p.var_bounds in
        child_bounds.(v) <-
          (if branch_up then { child_bounds.(v) with lower = 1.0 }
           else { child_bounds.(v) with upper = Some 0.0 });
        let child = { p with var_bounds = child_bounds } in
        let warm, _ = Simplex.solve_from_basis ~basis child in
        let cold = Simplex.solve child in
        (match (warm, cold) with
        | Simplex.Optimal { objective = a; _ },
          Simplex.Optimal { objective = b; _ } ->
          abs_float (a -. b) < 1e-6
        | Simplex.Infeasible, Simplex.Infeasible -> true
        | Simplex.Unbounded, Simplex.Unbounded -> true
        | _, _ -> false)
      | (Simplex.Optimal _ | Simplex.Infeasible | Simplex.Unbounded), _ ->
        true)

(* --- flat-arena solver vs the reference implementation --- *)

module Solver_arena = Pdw_lp.Solver_arena

(* The bounded-variable flat-arena solver and the retained [Reference]
   implementation (explicit upper-bound rows, per-call tableaux) must
   agree on status and objective for every LP.  Solutions are not
   compared: alternate optima are legitimate, and the two pivot orders
   routinely land on different vertices of the same optimal face. *)
let same_status_and_objective a b =
  match (a, b) with
  | Simplex.Optimal { objective = x; _ }, Simplex.Optimal { objective = y; _ }
    ->
    abs_float (x -. y) < 1e-6
  | Simplex.Infeasible, Simplex.Infeasible -> true
  | Simplex.Unbounded, Simplex.Unbounded -> true
  | _, _ -> false

let prop_production_matches_reference =
  QCheck2.Test.make
    ~name:"flat-arena simplex matches the reference solver (cold)" ~count:300
    gen_binary_ilp (fun spec ->
      let p = build_binary_ilp spec in
      let prod = Simplex.solve p in
      let refr = Simplex.Reference.solve p in
      same_status_and_objective prod refr
      (* Tiny instances also admit exhaustive enumeration: the shared LP
         optimum must lower-bound the brute-force integer optimum. *)
      &&
      match (prod, Brute.solve_binary p) with
      | Simplex.Optimal { objective = lp; _ }, Some (int_obj, _) ->
        lp <= int_obj +. 1e-6
      | _, _ -> true)

(* Warm-started equivalence.  Basis snapshots are not cross-compatible
   ([At_upper] vs [Upper_slack] triggers the cold fallback by design),
   so each solver warm-starts from its OWN parent basis; the dual
   simplex of both must land on the same objective. *)
let prop_warm_production_matches_reference =
  QCheck2.Test.make
    ~name:"flat-arena simplex matches the reference solver (warm)" ~count:300
    QCheck2.Gen.(pair gen_binary_ilp (pair (int_range 0 5) bool))
    (fun (spec, (branch_var, branch_up)) ->
      let p = build_binary_ilp spec in
      match (Simplex.solve_keep_basis p, Simplex.Reference.solve_keep_basis p)
      with
      | (Simplex.Optimal _, Some basis_p), (Simplex.Optimal _, Some basis_r)
        ->
        let v = branch_var mod p.num_vars in
        let child_bounds = Array.copy p.var_bounds in
        child_bounds.(v) <-
          (if branch_up then { child_bounds.(v) with lower = 1.0 }
           else { child_bounds.(v) with upper = Some 0.0 });
        let child = { p with var_bounds = child_bounds } in
        let warm_p, _ = Simplex.solve_from_basis ~basis:basis_p child in
        let warm_r, _ =
          Simplex.Reference.solve_from_basis ~basis:basis_r child
        in
        same_status_and_objective warm_p warm_r
      | _, _ -> true)

(* Epoch-stamped scratch reuse: two consecutive solves of the same
   packed problem through one arena must be bit-identical — the second
   solve runs entirely on stale marks invalidated only by the epoch
   bump, so any missed invalidation shows up as a diverging result. *)
let test_arena_epoch_reuse () =
  let p =
    Lp_problem.make ~num_vars:3
      ~objective:(expr [ (-10.0, 0); (-6.0, 1); (-4.0, 2) ])
      ~constraints:
        [
          le (expr [ (1.0, 0); (1.0, 1); (1.0, 2) ]) 2.0;
          ge (expr [ (1.0, 0); (1.0, 2) ]) 1.0;
          eq (expr [ (1.0, 1); (1.0, 2) ]) 1.0;
        ]
      ~var_bounds:[| bounds ~ub:1.0 (); bounds ~ub:1.0 (); bounds ~ub:1.0 () |]
  in
  let arena = Solver_arena.create () in
  let pk = Lp_problem.compile p in
  let solve () = Simplex.solve_packed ~arena ~want_basis:true pk p.var_bounds in
  let r1, b1 = solve () in
  let r2, b2 = solve () in
  (match (r1, r2) with
  | Simplex.Optimal { objective = o1; solution = s1 },
    Simplex.Optimal { objective = o2; solution = s2 } ->
    Alcotest.(check (float 0.0)) "same objective" o1 o2;
    Alcotest.(check (array (float 0.0))) "same solution" s1 s2
  | _, _ -> Alcotest.fail "expected optimal results from both solves");
  Alcotest.(check bool) "same basis snapshot" true (b1 = b2)

(* --- branching regression: near-integral relaxation values --- *)

let test_branching_near_integral () =
  (* The relaxation optimum x = 2.99998 is fractional (beyond the 1e-6
     integrality tolerance) but rounds to 3; branching must still use
     floor 2 / ceil 3 of the unsnapped value, giving the true integer
     optimum x = 2. *)
  let p =
    Lp_problem.make ~num_vars:1
      ~objective:(expr [ (-1.0, 0) ])
      ~constraints:[ le (expr [ (1.0, 0) ]) 2.99998 ]
      ~var_bounds:[| bounds ~ub:10.0 () |]
  in
  (match Ilp.solve ~integer:[| true |] p with
  | Ilp.Optimal { objective; solution } ->
    Alcotest.(check (float 1e-6)) "floor branch wins" (-2.0) objective;
    Alcotest.(check (float 1e-6)) "x = 2" 2.0 solution.(0)
  | r -> Alcotest.failf "expected optimal, got %a" Ilp.pp_result r);
  (* Mirror case just above an integer: x >= 3.00002 forces x = 4. *)
  let q =
    Lp_problem.make ~num_vars:1
      ~objective:(expr [ (1.0, 0) ])
      ~constraints:[ ge (expr [ (1.0, 0) ]) 3.00002 ]
      ~var_bounds:[| bounds ~ub:10.0 () |]
  in
  match Ilp.solve ~integer:[| true |] q with
  | Ilp.Optimal { objective; solution } ->
    Alcotest.(check (float 1e-6)) "ceil branch wins" 4.0 objective;
    Alcotest.(check (float 1e-6)) "x = 4" 4.0 solution.(0)
  | r -> Alcotest.failf "expected optimal, got %a" Ilp.pp_result r

let test_lin_expr_algebra () =
  let e = Lin_expr.add (Lin_expr.term 2.0 0) (Lin_expr.term 3.0 1) in
  let e = Lin_expr.add e (Lin_expr.constant 4.0) in
  Alcotest.(check (float 1e-9)) "eval" (2.0 +. 6.0 +. 4.0)
    (Lin_expr.eval e (fun v -> if v = 0 then 1.0 else 2.0));
  let cancelled = Lin_expr.sub e e in
  Alcotest.(check int) "cancellation drops terms" 0
    (List.length (Lin_expr.terms cancelled));
  Alcotest.(check (float 1e-9)) "coeff" 3.0 (Lin_expr.coeff e 1);
  Alcotest.(check (float 1e-9)) "missing coeff" 0.0 (Lin_expr.coeff e 9)

let () =
  Alcotest.run "pdw_lp"
    [
      ( "lin_expr",
        [ Alcotest.test_case "algebra" `Quick test_lin_expr_algebra ] );
      ( "simplex",
        [
          Alcotest.test_case "textbook" `Quick test_simplex_textbook;
          Alcotest.test_case "equality" `Quick test_simplex_equality;
          Alcotest.test_case "infeasible" `Quick test_simplex_infeasible;
          Alcotest.test_case "unbounded" `Quick test_simplex_unbounded;
          Alcotest.test_case "variable bounds" `Quick test_simplex_var_bounds;
          Alcotest.test_case "negative lower bound" `Quick
            test_simplex_negative_lower_bound;
          Alcotest.test_case "no constraints" `Quick
            test_simplex_no_constraints;
          Alcotest.test_case "degenerate" `Quick test_simplex_degenerate;
          Alcotest.test_case "constant objective" `Quick
            test_simplex_constant_objective;
          Alcotest.test_case "redundant equalities" `Quick
            test_simplex_redundant_equalities;
        ] );
      ( "ilp",
        [
          Alcotest.test_case "knapsack" `Quick test_ilp_knapsack;
          Alcotest.test_case "fractional relaxation" `Quick
            test_ilp_fractional_relaxation;
          Alcotest.test_case "infeasible" `Quick test_ilp_infeasible;
          Alcotest.test_case "lazy cuts" `Quick test_ilp_lazy_cuts;
          Alcotest.test_case "near-integral branching" `Quick
            test_branching_near_integral;
        ] );
      ( "heap",
        [
          Alcotest.test_case "pops ascending" `Quick test_heap_pops_ascending;
          Alcotest.test_case "FIFO on ties" `Quick test_heap_fifo_on_ties;
          Alcotest.test_case "interleaved add/pop" `Quick
            test_heap_interleaved;
        ] );
      ( "model",
        [
          Alcotest.test_case "disjunction" `Quick test_model_disjunction;
          Alcotest.test_case "implies_ge" `Quick test_model_implies;
        ] );
      ( "reference",
        [ Alcotest.test_case "brute knapsack" `Quick test_brute_matches_example ]
      );
      ( "arena",
        [ Alcotest.test_case "epoch reuse" `Quick test_arena_epoch_reuse ] );
      ( "presolve",
        [
          Alcotest.test_case "singleton rows" `Quick
            test_presolve_singleton_rows;
          Alcotest.test_case "crossed bounds" `Quick
            test_presolve_detects_crossed_bounds;
          Alcotest.test_case "fixed substitution" `Quick
            test_presolve_substitutes_fixed;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [
            prop_ilp_matches_brute;
            prop_simplex_below_ilp;
            prop_simplex_solution_feasible;
            prop_presolve_preserves_optimum;
            prop_warm_start_matches_cold;
            prop_production_matches_reference;
            prop_warm_production_matches_reference;
          ] );
    ]
