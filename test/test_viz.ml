(* Tests for the SVG visualization library: document building/escaping,
   layout maps and schedule Gantt charts. *)

module Svg = Pdw_viz.Svg
module Layout_svg = Pdw_viz.Layout_svg
module Gantt_svg = Pdw_viz.Gantt_svg
module Layout_builder = Pdw_biochip.Layout_builder
module Benchmarks = Pdw_assay.Benchmarks
module Synthesis = Pdw_synth.Synthesis

let contains haystack needle =
  let nl = String.length needle and hl = String.length haystack in
  let rec go i =
    if i + nl > hl then false
    else if String.sub haystack i nl = needle then true
    else go (i + 1)
  in
  go 0

let count_occurrences haystack needle =
  let nl = String.length needle and hl = String.length haystack in
  let rec go i acc =
    if i + nl > hl then acc
    else if String.sub haystack i nl = needle then go (i + 1) (acc + 1)
    else go (i + 1) acc
  in
  go 0 0

let test_svg_builder () =
  let svg = Svg.create ~width:100.0 ~height:50.0 in
  Svg.rect svg ~x:1.0 ~y:2.0 ~w:3.0 ~h:4.0 ~attrs:[ ("fill", "red") ] ();
  Svg.line svg ~x1:0.0 ~y1:0.0 ~x2:9.0 ~y2:9.0 ();
  Svg.circle svg ~cx:5.0 ~cy:5.0 ~r:2.0 ();
  Svg.text svg ~x:0.0 ~y:0.0 "hello";
  Svg.polyline svg [ (0.0, 0.0); (1.0, 1.0) ] ();
  let out = Svg.to_string svg in
  Alcotest.(check bool) "svg root" true (contains out "<svg xmlns");
  Alcotest.(check bool) "closes root" true (contains out "</svg>");
  Alcotest.(check bool) "has rect" true (contains out "<rect");
  Alcotest.(check bool) "has line" true (contains out "<line");
  Alcotest.(check bool) "has circle" true (contains out "<circle");
  Alcotest.(check bool) "has text" true (contains out ">hello</text>");
  Alcotest.(check bool) "has polyline" true (contains out "<polyline")

let test_svg_escaping () =
  let svg = Svg.create ~width:10.0 ~height:10.0 in
  Svg.text svg ~x:0.0 ~y:0.0 "a<b & \"c\"";
  let out = Svg.to_string svg in
  Alcotest.(check bool) "escapes <" true (contains out "a&lt;b");
  Alcotest.(check bool) "escapes &" true (contains out "&amp;");
  Alcotest.(check bool) "escapes quotes" true (contains out "&quot;c&quot;");
  Alcotest.(check bool) "no raw <b" false (contains out "a<b")

let test_svg_balanced_tags () =
  let svg = Svg.create ~width:10.0 ~height:10.0 in
  Svg.rect svg ~x:0.0 ~y:0.0 ~w:1.0 ~h:1.0 ();
  Svg.text svg ~x:0.0 ~y:0.0 "t";
  let out = Svg.to_string svg in
  Alcotest.(check int) "one <svg" 1 (count_occurrences out "<svg");
  Alcotest.(check int) "one </svg>" 1 (count_occurrences out "</svg>");
  Alcotest.(check int) "text closed"
    (count_occurrences out "<text")
    (count_occurrences out "</text>")

let test_layout_svg () =
  let layout = Layout_builder.fig2_layout () in
  let out = Layout_svg.render layout in
  Alcotest.(check bool) "is svg" true (contains out "<svg");
  (* 5 devices drawn with their glyph labels, 8 ports as circles. *)
  Alcotest.(check int) "8 port circles" 8 (count_occurrences out "<circle");
  Alcotest.(check bool) "port names shown" true (contains out ">in1</text>");
  Alcotest.(check bool) "mixer glyph" true (contains out ">M</text>")

let test_layout_svg_highlight () =
  let layout = Layout_builder.fig2_layout () in
  let path =
    Pdw_geometry.Gpath.of_cells
      [ Pdw_geometry.Coord.make 1 3; Pdw_geometry.Coord.make 2 3 ]
  in
  let out = Layout_svg.render ~highlight:[ ("wash 1", path) ] layout in
  Alcotest.(check bool) "has overlay" true (contains out "<polyline");
  Alcotest.(check bool) "has legend" true (contains out ">wash 1</text>")

let test_layout_svg_multicell () =
  let layout =
    Pdw_synth.Placement.island_layout
      ~device_kinds:
        Pdw_biochip.Device.[ Mixer; Heater; Detector ]
      ()
  in
  let out = Layout_svg.render layout in
  (* Three devices, three cells each: nine glyph labels. *)
  let glyph_count =
    List.fold_left
      (fun acc g -> acc + count_occurrences out (">" ^ g ^ "</text>"))
      0 [ "M"; "H"; "D" ]
  in
  Alcotest.(check int) "one glyph per device cell" 9 glyph_count

let test_gantt_svg () =
  let s =
    Synthesis.synthesize
      ~layout:(Layout_builder.fig2_layout ())
      (Benchmarks.motivating ())
  in
  let out = Gantt_svg.render s.Synthesis.schedule in
  Alcotest.(check bool) "is svg" true (contains out "<svg");
  (* Row labels: the five devices and the task classes that occur. *)
  List.iter
    (fun label ->
      Alcotest.(check bool) (label ^ " row") true
        (contains out (">" ^ label ^ "</text>")))
    [ "mixer"; "filter"; "heater"; "transports"; "removals"; "disposals" ];
  (* Bars: one rect per entry plus background; at least #entries rects. *)
  let entries = List.length (Pdw_synth.Schedule.entries s.Synthesis.schedule) in
  Alcotest.(check bool) "enough bars" true
    (count_occurrences out "<rect" > entries)

let test_gantt_svg_with_washes () =
  let s =
    Synthesis.synthesize
      ~layout:(Layout_builder.fig2_layout ())
      (Benchmarks.motivating ())
  in
  let o = Pdw_wash.Pdw.optimize s in
  let out = Gantt_svg.render o.Pdw_wash.Wash_plan.schedule in
  Alcotest.(check bool) "washes row" true (contains out ">washes</text>")

(* The HTML run report embeds both SVGs verbatim into one well-formed,
   self-contained page. *)
let test_report_html () =
  let s =
    Synthesis.synthesize
      ~layout:(Layout_builder.fig2_layout ())
      (Benchmarks.motivating ())
  in
  let o = Pdw_wash.Pdw.optimize s in
  let layout_svg = Layout_svg.render s.Synthesis.layout in
  let gantt_svg = Gantt_svg.render o.Pdw_wash.Wash_plan.schedule in
  let html =
    Pdw_viz.Report_html.render ~title:"report <smoke>" ~layout_svg
      ~gantt_svg
      ~metrics:[ ("washes", "6"); ("converged", "true") ]
      ~stage_ms:[ ("plan.paths", 1.25) ]
      ~counters:[ ("core.plan.rounds", 2) ]
      ~washes:
        [
          {
            Pdw_viz.Report_html.ordinal = 1;
            task = 19;
            round = 1;
            group = 0;
            n_targets = 1;
            length = 6;
            window = (2, 5);
            finder = "heuristic";
            flow_port = 0;
            waste_port = 5;
            n_merged = 0;
          };
        ]
      ~holds:
        [
          {
            Pdw_viz.Report_html.park_task = 11;
            cell = (5, 1);
            fluid = "mix(r1,r2)";
            hold_start = 14;
            hold_until = 31;
          };
        ]
      ()
  in
  Alcotest.(check bool) "doctype" true (contains html "<!DOCTYPE html>");
  Alcotest.(check bool) "closes html" true (contains html "</html>");
  Alcotest.(check bool) "title escaped" true
    (contains html "report &lt;smoke&gt;");
  Alcotest.(check bool) "embeds layout svg" true (contains html layout_svg);
  Alcotest.(check bool) "embeds gantt svg" true (contains html gantt_svg);
  Alcotest.(check bool) "wash table" true
    (contains html "<table class=\"sortable\">");
  Alcotest.(check bool) "wash row" true (contains html "<td>heuristic</td>");
  Alcotest.(check bool) "stage table" true (contains html "plan.paths");
  Alcotest.(check bool) "counter table" true
    (contains html "core.plan.rounds");
  Alcotest.(check bool) "sorter present" true (contains html "sortTable");
  (* Structural sanity: every opened tag of the kinds we emit closes. *)
  List.iter
    (fun tag ->
      Alcotest.(check int)
        (tag ^ " balanced")
        (count_occurrences html ("<" ^ tag))
        (count_occurrences html ("</" ^ tag ^ ">")))
    [ "table"; "thead"; "tbody"; "h2"; "title"; "script"; "style" ]

let () =
  Alcotest.run "pdw_viz"
    [
      ( "svg",
        [
          Alcotest.test_case "builder" `Quick test_svg_builder;
          Alcotest.test_case "escaping" `Quick test_svg_escaping;
          Alcotest.test_case "balanced tags" `Quick test_svg_balanced_tags;
        ] );
      ( "layout",
        [
          Alcotest.test_case "fig2 map" `Quick test_layout_svg;
          Alcotest.test_case "highlights" `Quick test_layout_svg_highlight;
          Alcotest.test_case "multi-cell devices" `Quick
            test_layout_svg_multicell;
        ] );
      ( "gantt",
        [
          Alcotest.test_case "baseline chart" `Quick test_gantt_svg;
          Alcotest.test_case "wash rows" `Quick test_gantt_svg_with_washes;
        ] );
      ( "report",
        [ Alcotest.test_case "html smoke" `Quick test_report_html ] );
    ]
