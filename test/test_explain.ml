(* Golden tests for the explain engine (lib/core/explain.ml) over a real
   decision ledger: run the planner on the Motivating example with the
   ledger on, then check that `explain` attributes a known Needed cell,
   a known Type-1 skip and a known Type-2 skip to the right rules, and
   that a psi merge decision is explained with its windows.  The
   Motivating chip's nine removals are all psi-rejected (their windows
   never overlap a wash group's), so PCR supplies the accepted-merge
   side. *)

module Events = Pdw_obs.Events
module Explain = Pdw_wash.Explain
module Synthesis = Pdw_synth.Synthesis
module Benchmarks = Pdw_assay.Benchmarks
module Layout_builder = Pdw_biochip.Layout_builder

let contains haystack needle =
  let nl = String.length needle and hl = String.length haystack in
  let rec go i =
    if i + nl > hl then false
    else if String.sub haystack i nl = needle then true
    else go (i + 1)
  in
  go 0

let ledger_of ?layout benchmark =
  Events.reset ();
  Events.set_enabled true;
  let s = Synthesis.synthesize ?layout benchmark in
  let outcome = Pdw_wash.Pdw.optimize s in
  Events.set_enabled false;
  let events = Events.events () in
  Events.reset ();
  (events, outcome)

let motivating =
  lazy
    (ledger_of ~layout:(Layout_builder.fig2_layout ())
       (Benchmarks.motivating ()))

let check_mentions ~what text needles =
  List.iter
    (fun needle ->
      Alcotest.(check bool)
        (Printf.sprintf "%s mentions %S" what needle)
        true (contains text needle))
    needles

(* Cell (2,2) of the Motivating chip is the filter outlet: round 0
   classifies it Needed (residue r1 against the later filtered-product
   flow), and wash #1 covers it. *)
let test_needed_cell () =
  let events, _ = Lazy.force motivating in
  match Explain.cell ~events ~x:2 ~y:2 with
  | None -> Alcotest.fail "cell (2,2) missing from the ledger"
  | Some text ->
    check_mentions ~what:"needed cell" text
      [
        "verdict: needed";
        "sensitive";
        "next use: task#2";
        "covered by wash #1";
        "washed by:";
      ]

(* Type-1 skip: after task#6 the filter outlet is never reused, so its
   residue may stay. *)
let test_type1_cell () =
  let events, _ = Lazy.force motivating in
  match Explain.cell ~events ~x:2 ~y:2 with
  | None -> Alcotest.fail "cell (2,2) missing from the ledger"
  | Some text ->
    check_mentions ~what:"type1 skip" text
      [ "verdict: type1:unused"; "no later schedule entry" ]

(* Type-2 skip: cell (2,1) sees the same fluid again (tolerated
   co-input), so washing is skipped. *)
let test_type2_cell () =
  let events, _ = Lazy.force motivating in
  match Explain.cell ~events ~x:2 ~y:1 with
  | None -> Alcotest.fail "cell (2,1) missing from the ledger"
  | Some text ->
    check_mentions ~what:"type2 skip" text
      [ "verdict: type2:same-fluid"; "tolerated co-inputs" ]

let test_unknown_cell () =
  let events, _ = Lazy.force motivating in
  Alcotest.(check bool)
    "cell far off-chip has no entries" true
    (Explain.cell ~events ~x:99 ~y:99 = None)

(* Wash provenance: every recorded wash explains its full chain, and
   ordinals past the end return None. *)
let test_wash_provenance () =
  let events, outcome = Lazy.force motivating in
  let n = Explain.num_washes ~events in
  Alcotest.(check int) "one ledger wash per planned wash"
    (List.length outcome.Pdw_wash.Wash_plan.washes)
    n;
  Alcotest.(check bool) "washes recorded" true (n > 0);
  (match Explain.wash ~events 1 with
  | None -> Alcotest.fail "wash #1 missing"
  | Some text ->
    check_mentions ~what:"wash #1" text
      [
        "wash #1 = task";
        "targets (";
        "window: [";
        "path: flow port";
        "contaminated by:";
        "forced by later use:";
      ]);
  Alcotest.(check bool) "past-the-end wash" true
    (Explain.wash ~events (n + 1) = None)

(* The Motivating example's psi rejections: every removal asks to merge
   and is turned down with the blocking group's window. *)
let test_psi_reject_recorded () =
  let events, _ = Lazy.force motivating in
  let rejects =
    List.filter
      (function Events.Merge_reject _ -> true | _ -> false)
      events
  in
  Alcotest.(check bool) "rejections recorded" true (rejects <> []);
  List.iter
    (function
      | Events.Merge_reject { reason; blocking_window; _ } ->
        Alcotest.(check bool)
          ("known reason: " ^ reason)
          true
          (List.mem reason
             [
               "no-overlapping-window"; "targets-too-far"; "path-growth";
               "no-covering-path";
             ]);
        if reason = "no-overlapping-window" then
          Alcotest.(check bool) "blocking window attached" true
            (blocking_window <> None)
      | _ -> ())
    rejects

(* PCR merges removals into washes (seven under the default policy), so
   its ledger carries Merge_accept events whose removal ids reappear in
   some wash's provenance. *)
let test_psi_accept_on_pcr () =
  match List.assoc_opt "PCR" (Benchmarks.all ()) with
  | None -> Alcotest.fail "PCR benchmark missing"
  | Some b ->
    let events, _ = ledger_of b in
    let accepted =
      List.filter_map
        (function
          | Events.Merge_accept { removal_task; base_len; enlarged_len; _ }
            ->
            Alcotest.(check bool) "path never shrinks" true
              (enlarged_len >= base_len);
            Some removal_task
          | _ -> None)
        events
    in
    Alcotest.(check bool) "psi merges accepted on PCR" true (accepted <> []);
    let explained =
      List.init (Explain.num_washes ~events) (fun i ->
          match Explain.wash ~events (i + 1) with
          | Some text -> text
          | None -> "")
      |> String.concat "\n"
    in
    List.iter
      (fun id ->
        Alcotest.(check bool)
          (Printf.sprintf "merged removal %d surfaces in a wash" id)
          true
          (contains explained (Printf.sprintf "task %d" id)))
      accepted

let () =
  Alcotest.run "pdw_explain"
    [
      ( "cell",
        [
          Alcotest.test_case "needed cell attributed" `Quick
            test_needed_cell;
          Alcotest.test_case "type-1 skip attributed" `Quick
            test_type1_cell;
          Alcotest.test_case "type-2 skip attributed" `Quick
            test_type2_cell;
          Alcotest.test_case "unknown cell" `Quick test_unknown_cell;
        ] );
      ( "wash",
        [
          Alcotest.test_case "provenance chain" `Quick
            test_wash_provenance;
        ] );
      ( "psi",
        [
          Alcotest.test_case "rejections carry windows" `Quick
            test_psi_reject_recorded;
          Alcotest.test_case "accepts surface on PCR" `Quick
            test_psi_accept_on_pcr;
        ] );
    ]
