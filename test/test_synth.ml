(* Tests for the pdw_synth library: placement, maze routing, flush
   routing, the serial scheduler, and end-to-end synthesis on the
   published benchmarks. *)

module Coord = Pdw_geometry.Coord
module Gpath = Pdw_geometry.Gpath
module Device = Pdw_biochip.Device
module Port = Pdw_biochip.Port
module Layout = Pdw_biochip.Layout
module Layout_builder = Pdw_biochip.Layout_builder
module Benchmarks = Pdw_assay.Benchmarks
module Placement = Pdw_synth.Placement
module Router = Pdw_synth.Router
module Task = Pdw_synth.Task
module Schedule = Pdw_synth.Schedule
module Scheduler = Pdw_synth.Scheduler
module Synthesis = Pdw_synth.Synthesis

let fig2 = Layout_builder.fig2_layout

(* --- placement --- *)

let test_placement_structure () =
  let layout =
    Placement.layout
      ~device_kinds:[ Device.Mixer; Device.Heater; Device.Detector ]
      ()
  in
  Alcotest.(check int) "3 devices" 3 (List.length (Layout.devices layout));
  Alcotest.(check bool) "has flow ports" true
    (List.length (Layout.flow_ports layout) >= 1);
  Alcotest.(check bool) "has waste ports" true
    (List.length (Layout.waste_ports layout) >= 1)

let test_placement_connected () =
  let layout =
    Placement.layout
      ~device_kinds:
        [ Device.Mixer; Device.Mixer; Device.Heater; Device.Detector;
          Device.Filter; Device.Storage ]
      ()
  in
  let ports = Layout.ports layout in
  let some_port = List.hd ports in
  let reach = Router.reachable layout ~src:some_port.Port.position in
  List.iter
    (fun (d : Device.t) ->
      Alcotest.(check bool)
        (d.Device.name ^ " reachable") true
        (List.for_all
           (fun c -> Coord.Set.mem c reach)
           (Layout.device_cells layout d.Device.id)))
    (Layout.devices layout);
  List.iter
    (fun (p : Port.t) ->
      Alcotest.(check bool)
        (p.Port.name ^ " reachable") true
        (Coord.Set.mem p.Port.position reach))
    ports

let test_placement_port_counts () =
  let layout =
    Placement.layout ~flow_ports:2 ~waste_ports:3
      ~device_kinds:[ Device.Mixer ] ()
  in
  Alcotest.(check int) "2 flow" 2 (List.length (Layout.flow_ports layout));
  Alcotest.(check int) "3 waste" 3 (List.length (Layout.waste_ports layout))

let test_placement_rejects_empty () =
  Alcotest.check_raises "empty library"
    (Invalid_argument "Placement.layout: empty device library") (fun () ->
      ignore (Placement.layout ~device_kinds:[] ()))

let test_ring_layout_structure () =
  let layout =
    Placement.ring_layout
      ~device_kinds:
        [ Device.Mixer; Device.Mixer; Device.Heater; Device.Detector;
          Device.Filter ]
      ()
  in
  Alcotest.(check int) "5 devices" 5 (List.length (Layout.devices layout));
  (* Everything reachable from the first port. *)
  let port = List.hd (Layout.ports layout) in
  let reach = Router.reachable layout ~src:port.Port.position in
  List.iter
    (fun (d : Device.t) ->
      Alcotest.(check bool) (d.Device.name ^ " reachable") true
        (List.for_all
           (fun c -> Coord.Set.mem c reach)
           (Layout.device_cells layout d.Device.id)))
    (Layout.devices layout)

let test_ring_synthesis_works () =
  List.iter
    (fun (name, (b : Benchmarks.t)) ->
      let reagents =
        List.length (Pdw_assay.Sequencing_graph.reagents b.Benchmarks.graph)
      in
      let layout =
        Placement.ring_layout
          ~flow_ports:(min 10 (max 4 reagents))
          ~device_kinds:b.Benchmarks.device_kinds ()
      in
      let s = Synthesis.synthesize ~layout b in
      Alcotest.(check (list string))
        (name ^ " ring schedule valid")
        []
        (Schedule.violations s.Synthesis.schedule))
    [ ("PCR", Benchmarks.pcr ()); ("Synthetic1", Benchmarks.synthetic_1 ()) ]

let test_island_layout_multicell () =
  let layout =
    Placement.island_layout
      ~device_kinds:[ Device.Mixer; Device.Heater; Device.Detector ]
      ()
  in
  (* Every device occupies exactly three cells. *)
  List.iter
    (fun (d : Device.t) ->
      Alcotest.(check int) (d.Device.name ^ " footprint") 3
        (List.length (Layout.device_cells layout d.Device.id)))
    (Layout.devices layout);
  let port = List.hd (Layout.ports layout) in
  let reach = Router.reachable layout ~src:port.Port.position in
  List.iter
    (fun (d : Device.t) ->
      Alcotest.(check bool) (d.Device.name ^ " reachable") true
        (List.for_all
           (fun c -> Coord.Set.mem c reach)
           (Layout.device_cells layout d.Device.id)))
    (Layout.devices layout)

let test_island_synthesis_and_wash () =
  let b = Benchmarks.pcr () in
  let reagents =
    List.length (Pdw_assay.Sequencing_graph.reagents b.Benchmarks.graph)
  in
  let layout =
    Placement.island_layout
      ~flow_ports:(min 10 (max 4 reagents))
      ~device_kinds:b.Benchmarks.device_kinds ()
  in
  let s = Synthesis.synthesize ~layout b in
  Alcotest.(check (list string)) "island schedule valid" []
    (Schedule.violations s.Synthesis.schedule);
  let o = Pdw_wash.Pdw.optimize s in
  Alcotest.(check bool) "island wash plan converges" true
    o.Pdw_wash.Wash_plan.converged;
  Alcotest.(check (list string)) "optimized island schedule valid" []
    (Schedule.violations o.Pdw_wash.Wash_plan.schedule)

(* --- routing --- *)

let test_shortest_on_fig2 () =
  let layout = fig2 () in
  let in1 = Option.get (Layout.port_by_name layout "in1") in
  let mixer = Option.get (Layout.device_by_name layout "mixer") in
  let anchor = Layout.device_anchor layout mixer.Device.id in
  match Router.shortest layout ~src:in1.Port.position ~dst:anchor () with
  | None -> Alcotest.fail "no route in1 -> mixer"
  | Some p ->
    (* in1 (0,3) to mixer (6,3) along the bus: 7 cells. *)
    Alcotest.(check int) "shortest length" 7 (Gpath.length p);
    Alcotest.(check bool) "starts at in1" true
      (Coord.equal (Gpath.source p) in1.Port.position);
    Alcotest.(check bool) "ends at mixer" true
      (Coord.equal (Gpath.target p) anchor)

let test_shortest_respects_avoid () =
  let layout = fig2 () in
  let in1 = Option.get (Layout.port_by_name layout "in1") in
  let mixer = Option.get (Layout.device_by_name layout "mixer") in
  let anchor = Layout.device_anchor layout mixer.Device.id in
  (* Block the bus cell (3,3): in1 -> mixer has no alternative. *)
  let avoid = Coord.Set.singleton (Coord.make 3 3) in
  Alcotest.(check bool) "blocked" true
    (Router.shortest layout ~avoid ~src:in1.Port.position ~dst:anchor ()
    = None)

let test_route_does_not_pass_through_ports () =
  let layout = fig2 () in
  let in1 = Option.get (Layout.port_by_name layout "in1") in
  let det2 = Option.get (Layout.device_by_name layout "detector2") in
  let anchor = Layout.device_anchor layout det2.Device.id in
  match Router.shortest layout ~src:in1.Port.position ~dst:anchor () with
  | None -> Alcotest.fail "no route"
  | Some p ->
    let interior = List.tl (List.rev (List.tl (Gpath.cells p))) in
    List.iter
      (fun c ->
        Alcotest.(check bool) "no port mid-path" true
          (Layout.through_routable layout c))
      interior

let test_cheapest_avoids_costly_cells () =
  let layout = fig2 () in
  (* From in3 (9,0) to out4 (11,6): two routes around; penalize one bus
     cell heavily and check the router detours when possible. *)
  let in1 = Option.get (Layout.port_by_name layout "in1") in
  let mixer = Option.get (Layout.device_by_name layout "mixer") in
  let anchor = Layout.device_anchor layout mixer.Device.id in
  let cost c = if Coord.equal c (Coord.make 3 3) then 50 else 0 in
  match
    ( Router.cheapest layout ~cost ~src:in1.Port.position ~dst:anchor (),
      Router.shortest layout ~src:in1.Port.position ~dst:anchor () )
  with
  | Some expensive, Some plain ->
    (* No detour exists on the bus, so the path is unchanged — but its
       existence shows costs do not break reachability. *)
    Alcotest.(check int) "same cells (no alternative)" (Gpath.length plain)
      (Gpath.length expensive)
  | _ -> Alcotest.fail "routes missing"

let test_covering_visits_targets () =
  let layout = fig2 () in
  let in1 = Option.get (Layout.port_by_name layout "in1") in
  let out4 = Option.get (Layout.port_by_name layout "out4") in
  let targets = Coord.Set.of_list [ Coord.make 3 3; Coord.make 8 3 ] in
  match
    Router.covering layout ~src:in1.Port.position ~dst:out4.Port.position
      ~targets ()
  with
  | None -> Alcotest.fail "no covering path"
  | Some p ->
    Alcotest.(check bool) "covers" true (Gpath.covers p targets);
    Alcotest.(check bool) "simple path" true
      (Gpath.length p = List.length (Gpath.cells p))

let test_flush_structure () =
  let layout = fig2 () in
  let targets = Coord.Set.of_list [ Coord.make 4 3; Coord.make 5 3 ] in
  match Router.flush layout ~targets () with
  | None -> Alcotest.fail "no flush"
  | Some (p, fp, wp) ->
    let fport = Layout.port layout fp and wport = Layout.port layout wp in
    Alcotest.(check bool) "starts at flow port" true
      (Port.is_flow fport
      && Coord.equal (Gpath.source p) fport.Port.position);
    Alcotest.(check bool) "ends at waste port" true
      (Port.is_waste wport
      && Coord.equal (Gpath.target p) wport.Port.position);
    Alcotest.(check bool) "covers targets" true (Gpath.covers p targets)

(* --- scheduler --- *)

let job ?(after = []) ?(release = 0) ?(rank = 0) key duration cells =
  {
    Scheduler.key;
    duration;
    after;
    release;
    cells = Coord.Set.of_list cells;
    rank;
    holds = Coord.Set.empty;
    releases = [];
  }

let assignment_of key assignments = List.assoc key assignments

let test_scheduler_precedence () =
  let a = Scheduler.Key.Tsk 0 and b = Scheduler.Key.Tsk 1 in
  let result =
    Scheduler.run [ job a 3 [ Coord.make 0 0 ]; job ~after:[ a ] b 2 [] ]
  in
  let ra = assignment_of a result and rb = assignment_of b result in
  Alcotest.(check bool) "b after a" true
    (rb.Scheduler.start >= ra.Scheduler.finish)

let test_scheduler_resource_conflict () =
  let a = Scheduler.Key.Tsk 0 and b = Scheduler.Key.Tsk 1 in
  let cell = [ Coord.make 1 1 ] in
  let result = Scheduler.run [ job a 3 cell; job b 2 cell ] in
  let ra = assignment_of a result and rb = assignment_of b result in
  Alcotest.(check bool) "no overlap" true
    (ra.Scheduler.finish <= rb.Scheduler.start
    || rb.Scheduler.finish <= ra.Scheduler.start)

let test_scheduler_disjoint_run_concurrently () =
  let a = Scheduler.Key.Tsk 0 and b = Scheduler.Key.Tsk 1 in
  let result =
    Scheduler.run [ job a 5 [ Coord.make 0 0 ]; job b 5 [ Coord.make 1 1 ] ]
  in
  let ra = assignment_of a result and rb = assignment_of b result in
  Alcotest.(check int) "both start at 0" 0
    (max ra.Scheduler.start rb.Scheduler.start)

let test_scheduler_release () =
  let a = Scheduler.Key.Tsk 0 in
  let result = Scheduler.run [ job ~release:7 a 1 [] ] in
  Alcotest.(check int) "released" 7 (assignment_of a result).Scheduler.start

let test_scheduler_rejects_cycle () =
  let a = Scheduler.Key.Tsk 0 and b = Scheduler.Key.Tsk 1 in
  Alcotest.check_raises "cycle"
    (Invalid_argument
       "Scheduler.run: precedence cycle (no ready job); stuck: task#0 \
        (after: task#1) | task#1 (after: task#0)")
    (fun () ->
      ignore (Scheduler.run [ job ~after:[ b ] a 1 []; job ~after:[ a ] b 1 [] ]))

let test_scheduler_rejects_duplicate () =
  let a = Scheduler.Key.Tsk 0 in
  Alcotest.check_raises "duplicate"
    (Invalid_argument "Scheduler.run: duplicate job task#0") (fun () ->
      ignore (Scheduler.run [ job a 1 []; job a 2 [] ]))

let test_earliest_fit () =
  let cell = Coord.make 0 0 in
  let busy c = if Coord.equal c cell then [ (2, 5); (7, 9) ] else [] in
  let fit lb duration =
    Scheduler.earliest_fit ~busy ~cells:(Coord.Set.singleton cell) ~duration
      ~lb
  in
  Alcotest.(check int) "fits before" 0 (fit 0 2);
  Alcotest.(check int) "bumped past first" 5 (fit 1 2);
  Alcotest.(check int) "gap too small" 9 (fit 1 3);
  Alcotest.(check int) "after everything" 9 (fit 8 4)

let test_scheduler_zero_duration () =
  let a = Scheduler.Key.Tsk 0 and b = Scheduler.Key.Tsk 1 in
  let cell = [ Coord.make 0 0 ] in
  let result = Scheduler.run [ job a 0 cell; job ~after:[ a ] b 2 cell ] in
  let ra = assignment_of a result and rb = assignment_of b result in
  Alcotest.(check int) "zero duration" ra.Scheduler.start ra.Scheduler.finish;
  Alcotest.(check bool) "b still ordered" true
    (rb.Scheduler.start >= ra.Scheduler.finish)

(* --- synthesis end-to-end --- *)

let all_with_motivating () =
  ("Motivating", Benchmarks.motivating (), Some (fig2 ()))
  :: List.map (fun (n, b) -> (n, b, None)) (Benchmarks.all ())

let test_synthesis_valid_schedules () =
  List.iter
    (fun (name, b, layout) ->
      let s = Synthesis.synthesize ?layout b in
      let errs = Schedule.violations s.Synthesis.schedule in
      Alcotest.(check (list string)) (name ^ " violations") [] errs)
    (all_with_motivating ())

let test_synthesis_task_structure () =
  let s = Synthesis.synthesize (Benchmarks.pcr ()) in
  let graph = (s.Synthesis.benchmark).Benchmarks.graph in
  let transports =
    List.filter
      (fun (t : Task.t) ->
        match t.Task.purpose with
        | Task.Transport _ -> true
        | Task.Removal _ | Task.Disposal _ | Task.Park _ | Task.Fetch _
        | Task.Wash _ ->
          false)
      s.Synthesis.tasks
  in
  (* One transport per edge. *)
  Alcotest.(check int) "transport per edge"
    (Pdw_assay.Sequencing_graph.num_edges graph)
    (List.length transports);
  (* One disposal per sink. *)
  let disposals =
    List.filter
      (fun (t : Task.t) ->
        match t.Task.purpose with
        | Task.Disposal _ -> true
        | Task.Transport _ | Task.Removal _ | Task.Park _ | Task.Fetch _
        | Task.Wash _ ->
          false)
      s.Synthesis.tasks
  in
  Alcotest.(check int) "disposal per sink"
    (List.length (Pdw_assay.Sequencing_graph.sinks graph))
    (List.length disposals);
  Alcotest.(check bool) "no washes from synthesis" true
    (List.for_all (fun t -> not (Task.is_wash t)) s.Synthesis.tasks)

let test_synthesis_binding_kinds () =
  List.iter
    (fun (name, b, layout) ->
      let s = Synthesis.synthesize ?layout b in
      let graph = b.Benchmarks.graph in
      Array.iteri
        (fun i device_id ->
          let op = Pdw_assay.Sequencing_graph.op graph i in
          let device = Layout.device s.Synthesis.layout device_id in
          Alcotest.(check bool)
            (Printf.sprintf "%s op %d kind" name (i + 1))
            true
            (Device.kind_equal device.Device.kind
               (Pdw_assay.Operation.device_kind op.Pdw_assay.Operation.kind)))
        s.Synthesis.binding)
    (all_with_motivating ())

let test_synthesis_rejects_missing_device () =
  (* A heat op with a mixer-only library cannot bind. *)
  let graph =
    Pdw_assay.Sequencing_graph.make ~name:"t"
      [
        {
          Pdw_assay.Sequencing_graph.op =
            Pdw_assay.Operation.make ~id:0 ~kind:Pdw_assay.Operation.Heat
              ~duration:2 ();
          inputs = [ Pdw_assay.Sequencing_graph.From_reagent (Pdw_biochip.Fluid.reagent "a") ];
        };
      ]
  in
  let b = { Benchmarks.graph; device_kinds = [ Device.Mixer ] } in
  Alcotest.check_raises "no heater"
    (Invalid_argument "Synthesis: no heater device for op 1") (fun () ->
      ignore (Synthesis.synthesize b))

let test_reschedule_is_stable () =
  let s = Synthesis.synthesize (Benchmarks.pcr ()) in
  let again = Synthesis.reschedule s ~tasks:s.Synthesis.tasks () in
  Alcotest.(check int) "same completion"
    (Schedule.assay_completion s.Synthesis.schedule)
    (Schedule.assay_completion again);
  Alcotest.(check (list string)) "still valid" [] (Schedule.violations again)

(* --- control layer / valve actuation --- *)

module Actuation = Pdw_synth.Actuation

let test_actuation_consistent () =
  let s = Synthesis.synthesize (Benchmarks.pcr ()) in
  let plan = Actuation.of_schedule s.Synthesis.schedule in
  Alcotest.(check bool) "events exist" true (Actuation.events plan <> []);
  (* Switching count is even: every open eventually closes. *)
  Alcotest.(check int) "balanced transitions" 0
    (Actuation.switching_count plan mod 2);
  Alcotest.(check bool) "peak within bounds" true
    (Actuation.peak_open plan > 0)

let test_actuation_state_matches_schedule () =
  let s = Synthesis.synthesize (Benchmarks.pcr ()) in
  let schedule = s.Synthesis.schedule in
  let plan = Actuation.of_schedule schedule in
  (* During any entry's run, all its valves are open. *)
  List.iter
    (fun entry ->
      let t = Schedule.entry_start entry in
      Coord.Set.iter
        (fun cell ->
          Alcotest.(check bool) "valve open during run" true
            (Actuation.state_at plan ~time:t cell = Actuation.Open))
        (Schedule.entry_cells schedule entry))
    (Schedule.entries schedule);
  (* After the makespan everything is closed. *)
  let horizon = Schedule.makespan schedule in
  List.iter
    (fun (cell, _) ->
      Alcotest.(check bool) "closed at the end" true
        (Actuation.state_at plan ~time:horizon cell = Actuation.Closed))
    (Actuation.per_valve plan)

let test_actuation_merges_abutting_windows () =
  (* Two back-to-back jobs on one cell: the valve opens once. *)
  let graph =
    (Benchmarks.pcr ()).Benchmarks.graph
  in
  ignore graph;
  let s = Synthesis.synthesize (Benchmarks.kinase_1 ()) in
  let plan = Actuation.of_schedule s.Synthesis.schedule in
  (* per_valve counts transitions; each is >= 2 and even. *)
  List.iter
    (fun (_, n) ->
      Alcotest.(check bool) "per-valve transitions even and positive" true
        (n >= 2 && n mod 2 = 0))
    (Actuation.per_valve plan)

let prop_actuation_consistent_random =
  QCheck2.Test.make
    ~name:"actuation plans derive from any valid schedule" ~count:30
    QCheck2.Gen.(int_range 0 10_000)
    (fun seed ->
      let b = Pdw_assay.Assay_gen.random ~max_ops:7 ~seed () in
      let s = Synthesis.synthesize b in
      let plan = Actuation.of_schedule s.Synthesis.schedule in
      Actuation.switching_count plan mod 2 = 0
      && Actuation.peak_open plan > 0)

let prop_random_assays_synthesize =
  QCheck2.Test.make ~name:"random assays synthesize to valid schedules"
    ~count:40
    QCheck2.Gen.(int_range 0 10_000)
    (fun seed ->
      let b = Pdw_assay.Assay_gen.random ~seed () in
      let s = Synthesis.synthesize b in
      Schedule.violations s.Synthesis.schedule = [])

let prop_shortest_is_shortest =
  (* BFS length equals manhattan distance on an empty street grid when
     endpoints share a street, and is never below manhattan. *)
  QCheck2.Test.make ~name:"routes are never shorter than manhattan"
    ~count:100
    QCheck2.Gen.(tup2 (int_range 0 10_000) (int_range 0 3))
    (fun (seed, _) ->
      let b = Pdw_assay.Assay_gen.random ~seed () in
      let s = Synthesis.synthesize b in
      List.for_all
        (fun (t : Task.t) ->
          let p = t.Task.path in
          Gpath.length p
          >= 1 + Coord.manhattan (Gpath.source p) (Gpath.target p))
        s.Synthesis.tasks)

(* --- distributed channel storage --- *)

module Storage = Pdw_synth.Storage

let test_storage_candidates () =
  let layout = fig2 () in
  let cands = Storage.candidate_cells layout in
  Alcotest.(check bool) "candidates exist" true (cands <> []);
  let sorted = List.sort_uniq Coord.compare cands in
  Alcotest.(check bool) "in coordinate order, duplicate-free" true
    (cands = sorted);
  List.iter
    (fun c ->
      Alcotest.(check bool)
        (Coord.to_string c ^ " through-routable") true
        (Layout.through_routable layout c))
    cands

(* A roomier chip than fig2 for allocation tests: the guard against
   pocketed channel cells needs open space to place several slots. *)
let storage_layout () =
  Placement.layout
    ~device_kinds:[ Device.Mixer; Device.Heater; Device.Detector ]
    ()

let test_storage_allocation_distinct () =
  let layout = storage_layout () in
  let anchor = Coord.make 6 3 in
  let parked = [ (0, anchor); (3, anchor); (7, anchor) ] in
  let alloc = Storage.allocate layout ~parked in
  Alcotest.(check (list int)) "request order preserved" [ 0; 3; 7 ]
    (List.map fst alloc);
  let cells = List.map snd alloc in
  Alcotest.(check int) "distinct cells" 3
    (List.length (List.sort_uniq Coord.compare cells));
  Alcotest.(check bool) "deterministic" true
    (Storage.allocate layout ~parked = alloc)

let test_storage_allocation_nearest () =
  (* Nearest-first modulo the pocket guard: successive requests from the
     same anchor get cells at non-decreasing distance, because later
     claims choose from a shrinking eligible set. *)
  let layout = storage_layout () in
  let anchor = Coord.make 6 3 in
  match Storage.allocate layout ~parked:[ (0, anchor); (1, anchor) ] with
  | [ (_, c0); (_, c1) ] ->
    Alcotest.(check bool) "non-decreasing distance" true
      (Coord.manhattan anchor c0 <= Coord.manhattan anchor c1)
  | _ -> Alcotest.fail "expected two allocations"

let test_storage_allocation_exhausts () =
  let layout = fig2 () in
  let n = List.length (Storage.candidate_cells layout) in
  let parked = List.init (n + 1) (fun i -> (i, Coord.make 0 0)) in
  match Storage.allocate layout ~parked with
  | _ -> Alcotest.fail "expected Invalid_argument"
  | exception Invalid_argument _ -> ()

let test_scheduler_hold_blocks_cell () =
  (* A park's hold pins its cell until the last fetch starts; a stranger
     wanting that cell must wait out the hold and the fetch itself. *)
  let x = Coord.make 4 4 in
  let park = Scheduler.Key.Tsk 0
  and fetch = Scheduler.Key.Tsk 1
  and intruder = Scheduler.Key.Tsk 2 in
  let result =
    Scheduler.run
      [
        { (job park 2 [ x ]) with Scheduler.holds = Coord.Set.singleton x };
        {
          (job ~after:[ park ] ~release:10 ~rank:1 fetch 2 [ x ]) with
          Scheduler.releases = [ park ];
        };
        job ~rank:2 intruder 3 [ x ];
      ]
  in
  let p = assignment_of park result
  and f = assignment_of fetch result
  and i = assignment_of intruder result in
  Alcotest.(check int) "park starts immediately" 0 p.Scheduler.start;
  Alcotest.(check int) "fetch honours its release" 10 f.Scheduler.start;
  Alcotest.(check bool) "intruder waits out hold and fetch" true
    (i.Scheduler.start >= f.Scheduler.finish)

let test_scheduler_releaser_may_overlap_hold () =
  (* Earlier fetches draw aliquots mid-hold; only the last one ends it. *)
  let x = Coord.make 4 4 in
  let park = Scheduler.Key.Tsk 0
  and f1 = Scheduler.Key.Tsk 1
  and f2 = Scheduler.Key.Tsk 2 in
  let result =
    Scheduler.run
      [
        { (job park 2 [ x ]) with Scheduler.holds = Coord.Set.singleton x };
        {
          (job ~after:[ park ] ~release:4 ~rank:1 f1 1 [ x ]) with
          Scheduler.releases = [ park ];
        };
        {
          (job ~after:[ park ] ~release:9 ~rank:2 f2 1 [ x ]) with
          Scheduler.releases = [ park ];
        };
      ]
  in
  let a1 = assignment_of f1 result and a2 = assignment_of f2 result in
  Alcotest.(check int) "first fetch runs mid-hold" 4 a1.Scheduler.start;
  Alcotest.(check int) "last fetch ends the hold" 9 a2.Scheduler.start

let test_storage_synthesis_valid () =
  List.iter
    (fun (name, (b : Benchmarks.t)) ->
      let s = Synthesis.synthesize b in
      let parks = List.filter Task.is_park s.Synthesis.tasks
      and fetches = List.filter Task.is_fetch s.Synthesis.tasks in
      Alcotest.(check bool) (name ^ " has parks") true (parks <> []);
      Alcotest.(check bool) (name ^ " has fetches") true (fetches <> []);
      Alcotest.(check (list string))
        (name ^ " schedule valid")
        []
        (Schedule.violations s.Synthesis.schedule))
    (Benchmarks.storage ())

let test_storage_holds_wellformed () =
  List.iter
    (fun (name, (b : Benchmarks.t)) ->
      let s = Synthesis.synthesize b in
      let holds = Schedule.holds s.Synthesis.schedule in
      let parks = List.filter Task.is_park s.Synthesis.tasks in
      Alcotest.(check int)
        (name ^ " one hold per park")
        (List.length parks) (List.length holds);
      List.iter
        (fun (h : Schedule.hold) ->
          Alcotest.(check bool) (name ^ " hold window ordered") true
            (h.Schedule.hold_until >= h.Schedule.hold_start))
        holds)
    (Benchmarks.storage ())

let prop_parked_assays_synthesize =
  QCheck2.Test.make
    ~name:"parked random assays synthesize to valid schedules" ~count:30
    QCheck2.Gen.(int_range 0 10_000)
    (fun seed ->
      let b = Pdw_assay.Assay_gen.random ~park_fraction:0.4 ~seed () in
      let s = Synthesis.synthesize b in
      Schedule.violations s.Synthesis.schedule = [])

let () =
  Alcotest.run "pdw_synth"
    [
      ( "placement",
        [
          Alcotest.test_case "structure" `Quick test_placement_structure;
          Alcotest.test_case "connected" `Quick test_placement_connected;
          Alcotest.test_case "port counts" `Quick test_placement_port_counts;
          Alcotest.test_case "rejects empty" `Quick
            test_placement_rejects_empty;
          Alcotest.test_case "ring structure" `Quick
            test_ring_layout_structure;
          Alcotest.test_case "ring synthesis" `Quick
            test_ring_synthesis_works;
          Alcotest.test_case "island multi-cell devices" `Quick
            test_island_layout_multicell;
          Alcotest.test_case "island synthesis + wash" `Quick
            test_island_synthesis_and_wash;
        ] );
      ( "router",
        [
          Alcotest.test_case "shortest on fig2" `Quick test_shortest_on_fig2;
          Alcotest.test_case "respects avoid" `Quick
            test_shortest_respects_avoid;
          Alcotest.test_case "ports terminate paths" `Quick
            test_route_does_not_pass_through_ports;
          Alcotest.test_case "cheapest with costs" `Quick
            test_cheapest_avoids_costly_cells;
          Alcotest.test_case "covering visits targets" `Quick
            test_covering_visits_targets;
          Alcotest.test_case "flush structure" `Quick test_flush_structure;
        ] );
      ( "scheduler",
        [
          Alcotest.test_case "precedence" `Quick test_scheduler_precedence;
          Alcotest.test_case "resource conflicts" `Quick
            test_scheduler_resource_conflict;
          Alcotest.test_case "disjoint concurrency" `Quick
            test_scheduler_disjoint_run_concurrently;
          Alcotest.test_case "release times" `Quick test_scheduler_release;
          Alcotest.test_case "rejects cycles" `Quick
            test_scheduler_rejects_cycle;
          Alcotest.test_case "rejects duplicates" `Quick
            test_scheduler_rejects_duplicate;
          Alcotest.test_case "earliest_fit" `Quick test_earliest_fit;
          Alcotest.test_case "zero-duration jobs" `Quick
            test_scheduler_zero_duration;
        ] );
      ( "synthesis",
        [
          Alcotest.test_case "valid schedules (all benchmarks)" `Quick
            test_synthesis_valid_schedules;
          Alcotest.test_case "task structure" `Quick
            test_synthesis_task_structure;
          Alcotest.test_case "binding kinds" `Quick
            test_synthesis_binding_kinds;
          Alcotest.test_case "rejects missing device" `Quick
            test_synthesis_rejects_missing_device;
          Alcotest.test_case "reschedule stability" `Quick
            test_reschedule_is_stable;
        ] );
      ( "actuation",
        [
          Alcotest.test_case "consistent plan" `Quick
            test_actuation_consistent;
          Alcotest.test_case "matches schedule" `Quick
            test_actuation_state_matches_schedule;
          Alcotest.test_case "merged windows" `Quick
            test_actuation_merges_abutting_windows;
        ] );
      ( "storage",
        [
          Alcotest.test_case "candidate cells" `Quick test_storage_candidates;
          Alcotest.test_case "distinct allocation" `Quick
            test_storage_allocation_distinct;
          Alcotest.test_case "nearest-first allocation" `Quick
            test_storage_allocation_nearest;
          Alcotest.test_case "allocation exhaustion" `Quick
            test_storage_allocation_exhausts;
          Alcotest.test_case "hold blocks strangers" `Quick
            test_scheduler_hold_blocks_cell;
          Alcotest.test_case "releasers overlap hold" `Quick
            test_scheduler_releaser_may_overlap_hold;
          Alcotest.test_case "storage assays synthesize" `Quick
            test_storage_synthesis_valid;
          Alcotest.test_case "holds well-formed" `Quick
            test_storage_holds_wellformed;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [
            prop_random_assays_synthesize;
            prop_shortest_is_shortest;
            prop_actuation_consistent_random;
            prop_parked_assays_synthesize;
          ] );
    ]
