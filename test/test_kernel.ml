(* Equivalence tests for the flat-array search kernel: on random
   layouts, random endpoints, random avoid sets, random costs and random
   target sets, the kernel-backed [Router.shortest] / [cheapest] /
   [covering] must return exactly the same paths as the legacy
   table-and-set implementations kept in [Router.Reference] — that
   identity is what keeps every planner metric byte-identical across
   the perf overhaul.  Plus: arena reuse across many searches (the
   epoch trick), flush determinism across domain counts against a
   brute-force oracle, and LRU behaviour of the flush memo. *)

module Coord = Pdw_geometry.Coord
module Gpath = Pdw_geometry.Gpath
module Device = Pdw_biochip.Device
module Port = Pdw_biochip.Port
module Layout = Pdw_biochip.Layout
module Layout_builder = Pdw_biochip.Layout_builder
module Placement = Pdw_synth.Placement
module Router = Pdw_synth.Router
module Search_kernel = Pdw_synth.Search_kernel
module Counters = Pdw_obs.Counters

(* --- random-instance plumbing -------------------------------------- *)

(* A fixed pool of structurally different layouts: the hand-built Fig. 2
   chip plus the three generated architectures (street grid, ring bus,
   multi-cell islands) at a couple of sizes. *)
let layout_pool =
  lazy
    [
      Layout_builder.fig2_layout ();
      Placement.layout
        ~device_kinds:[ Device.Mixer; Device.Heater; Device.Detector ]
        ();
      Placement.layout ~flow_ports:2 ~waste_ports:2
        ~device_kinds:
          [ Device.Mixer; Device.Mixer; Device.Filter; Device.Storage;
            Device.Detector; Device.Heater ]
        ();
      Placement.ring_layout
        ~device_kinds:
          [ Device.Mixer; Device.Heater; Device.Detector; Device.Filter ]
        ();
      Placement.island_layout
        ~device_kinds:[ Device.Mixer; Device.Heater; Device.Detector ]
        ();
    ]

let pick_layout st =
  let pool = Lazy.force layout_pool in
  List.nth pool (Random.State.int st (List.length pool))

let routable_cells layout =
  let w = Layout.width layout and h = Layout.height layout in
  let acc = ref [] in
  for y = h - 1 downto 0 do
    for x = w - 1 downto 0 do
      let c = Coord.make x y in
      if Layout.routable layout c then acc := c :: !acc
    done
  done;
  !acc

let pick_cell st cells = List.nth cells (Random.State.int st (List.length cells))

let random_subset st ~denom cells =
  List.fold_left
    (fun s c ->
      if Random.State.int st denom = 0 then Coord.Set.add c s else s)
    Coord.Set.empty cells

(* Deterministic pseudo-random non-negative cell cost. *)
let random_cost st =
  let salt = Random.State.int st 1000 in
  fun (c : Coord.t) -> (Coord.hash c + salt) mod 5

let path_cells = function
  | None -> None
  | Some p -> Some (Gpath.cells p)

let same_path label a b =
  Alcotest.(check (option (list (pair int int))))
    label
    (Option.map (List.map (fun (c : Coord.t) -> (c.Coord.x, c.Coord.y))) a)
    (Option.map (List.map (fun (c : Coord.t) -> (c.Coord.x, c.Coord.y))) b)

let equal_paths a b =
  match (path_cells a, path_cells b) with
  | None, None -> true
  | Some xs, Some ys -> (
    try List.for_all2 Coord.equal xs ys with Invalid_argument _ -> false)
  | _ -> false

(* --- kernel = reference equivalence -------------------------------- *)

let prop_shortest_equiv =
  QCheck2.Test.make ~name:"kernel shortest = reference shortest" ~count:150
    QCheck2.Gen.(int_range 0 1_000_000)
    (fun seed ->
      let st = Random.State.make [| seed; 1 |] in
      let layout = pick_layout st in
      let cells = routable_cells layout in
      let src = pick_cell st cells and dst = pick_cell st cells in
      let avoid = random_subset st ~denom:8 cells in
      equal_paths
        (Router.shortest layout ~avoid ~src ~dst ())
        (Router.Reference.shortest layout ~avoid ~src ~dst ()))

let prop_cheapest_equiv =
  QCheck2.Test.make ~name:"kernel cheapest = reference cheapest" ~count:150
    QCheck2.Gen.(int_range 0 1_000_000)
    (fun seed ->
      let st = Random.State.make [| seed; 2 |] in
      let layout = pick_layout st in
      let cells = routable_cells layout in
      let src = pick_cell st cells and dst = pick_cell st cells in
      let avoid = random_subset st ~denom:10 cells in
      let cost = random_cost st in
      equal_paths
        (Router.cheapest layout ~avoid ~cost ~src ~dst ())
        (Router.Reference.cheapest layout ~avoid ~cost ~src ~dst ()))

(* When a mid-chain segment sweeps through [dst], the final segment
   duplicates it and [Gpath.of_cells] rejects the walk — in the legacy
   implementation and the kernel alike.  Compare outcomes, exception
   included. *)
let covering_outcome f =
  match f () with
  | r -> Ok (path_cells r)
  | exception Invalid_argument m -> Error m

let prop_covering_equiv =
  QCheck2.Test.make ~name:"kernel covering = reference covering" ~count:120
    QCheck2.Gen.(int_range 0 1_000_000)
    (fun seed ->
      let st = Random.State.make [| seed; 3 |] in
      let layout = pick_layout st in
      let cells = routable_cells layout in
      let src = pick_cell st cells and dst = pick_cell st cells in
      let targets = random_subset st ~denom:12 cells in
      let cost = if Random.State.bool st then Some (random_cost st) else None in
      let kernel =
        covering_outcome (fun () ->
            Router.covering layout ?cost ~src ~dst ~targets ())
      in
      let reference =
        covering_outcome (fun () ->
            Router.Reference.covering layout ?cost ~src ~dst ~targets ())
      in
      match (kernel, reference) with
      | Ok a, Ok b -> (
        match (a, b) with
        | None, None -> true
        | Some xs, Some ys -> (
          try List.for_all2 Coord.equal xs ys
          with Invalid_argument _ -> false)
        | _ -> false)
      | Error a, Error b -> a = b
      | _ -> false)

(* --- arena reuse (the epoch trick) --------------------------------- *)

(* One arena serves a long interleaved sequence of searches without any
   clearing between them; a fresh arena must agree with the reused one
   at every step. *)
let test_epoch_reuse () =
  let layout =
    Placement.layout
      ~device_kinds:[ Device.Mixer; Device.Heater; Device.Detector ]
      ()
  in
  let cells = routable_cells layout in
  let reused = Search_kernel.create layout in
  let st = Random.State.make [| 42 |] in
  for i = 1 to 60 do
    let fresh = Search_kernel.create layout in
    let src = pick_cell st cells and dst = pick_cell st cells in
    let avoid = random_subset st ~denom:8 cells in
    let label kind = Printf.sprintf "%s #%d" kind i in
    (match Random.State.int st 3 with
    | 0 ->
      same_path (label "shortest")
        (path_cells (Search_kernel.shortest reused ~avoid ~src ~dst ()))
        (path_cells (Search_kernel.shortest fresh ~avoid ~src ~dst ()))
    | 1 ->
      let cost = random_cost st in
      same_path (label "cheapest")
        (path_cells (Search_kernel.cheapest reused ~avoid ~cost ~src ~dst ()))
        (path_cells (Search_kernel.cheapest fresh ~avoid ~cost ~src ~dst ()))
    | _ ->
      let targets = random_subset st ~denom:10 cells in
      let run arena =
        covering_outcome (fun () ->
            Search_kernel.covering arena ~avoid ~src ~dst ~targets ())
      in
      Alcotest.(check bool) (label "covering") true (run reused = run fresh))
  done

(* --- flush: oracle + domain-count determinism ---------------------- *)

(* Brute-force flush oracle: every (flow, waste) pair via the reference
   covering search, cost = cell count, first strictly-cheaper pair
   wins. *)
let reference_flush layout ~targets =
  let best = ref None in
  List.iter
    (fun (fp : Port.t) ->
      List.iter
        (fun (wp : Port.t) ->
          match
            Router.Reference.covering layout ~src:fp.Port.position
              ~dst:wp.Port.position ~targets ()
          with
          | None -> ()
          | Some p -> (
            let c = List.length (Gpath.cells p) in
            match !best with
            | Some (_, bc, _, _) when bc <= c -> ()
            | _ -> best := Some (p, c, fp.Port.id, wp.Port.id)))
        (Layout.waste_ports layout))
    (Layout.flow_ports layout);
  Option.map (fun (p, _, f, w) -> (p, f, w)) !best

let check_flush_result label expected actual =
  let render = function
    | None -> "none"
    | Some (p, f, w) ->
      Printf.sprintf "ports %d->%d via %s" f w
        (String.concat ";"
           (List.map Coord.to_string (Gpath.cells p)))
  in
  Alcotest.(check string) label (render expected) (render actual)

let prop_flush_matches_oracle_and_domains =
  QCheck2.Test.make
    ~name:"flush = brute-force oracle at 1 and 2 domains" ~count:25
    QCheck2.Gen.(int_range 0 1_000_000)
    (fun seed ->
      let st = Random.State.make [| seed; 4 |] in
      let layout = pick_layout st in
      let cells = routable_cells layout in
      let targets = random_subset st ~denom:15 cells in
      let expected = reference_flush layout ~targets in
      (* [~avoid:empty] routes identically but skips the memo table. *)
      Router.set_flush_domains 1;
      let seq = Router.flush layout ~avoid:Coord.Set.empty ~targets () in
      Router.set_flush_domains 2;
      let par = Router.flush layout ~avoid:Coord.Set.empty ~targets () in
      Router.set_flush_domains 1;
      check_flush_result "sequential flush" expected seq;
      check_flush_result "parallel flush" expected par;
      true)

(* --- flush memo: LRU + eviction counter ---------------------------- *)

let test_memo_lru () =
  Counters.set_enabled true;
  let value name =
    match
      List.find_opt (fun (n, _, _) -> n = name) (Counters.all ())
    with
    | Some (_, _, v) -> v
    | None -> 0
  in
  let hits = "synth.router.flush_memo_hits" in
  let evictions = "synth.router.flush_memo_evictions" in
  let fresh_layout () =
    Placement.layout ~device_kinds:[ Device.Mixer; Device.Heater ] ()
  in
  let flush layout =
    ignore (Router.flush layout ~targets:Coord.Set.empty ())
  in
  let a = fresh_layout () and b = fresh_layout () in
  flush a;
  flush b;
  flush a (* refresh A: B is now the least recently used *);
  let evict0 = value evictions in
  (* Fill the 8-entry registry past capacity: 6 more layouts reach the
     cap, the 7th forces one eviction — of B, not A. *)
  for _ = 1 to 7 do
    flush (fresh_layout ())
  done;
  Alcotest.(check bool) "an eviction happened" true (value evictions > evict0);
  let hits0 = value hits in
  flush a;
  Alcotest.(check int) "A survived (memo hit)" (hits0 + 1) (value hits);
  let misses_before_b = value hits in
  flush b;
  Alcotest.(check int) "B was evicted (no new hit)" misses_before_b
    (value hits)

let () =
  Alcotest.run "pdw_search_kernel"
    [
      ( "equivalence",
        List.map QCheck_alcotest.to_alcotest
          [ prop_shortest_equiv; prop_cheapest_equiv; prop_covering_equiv ] );
      ("arena", [ Alcotest.test_case "epoch reuse" `Quick test_epoch_reuse ]);
      ( "flush",
        List.map QCheck_alcotest.to_alcotest
          [ prop_flush_matches_oracle_and_domains ] );
      ("memo", [ Alcotest.test_case "LRU eviction" `Quick test_memo_lru ]);
    ]
